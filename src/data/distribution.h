// Label-distribution arithmetic from Section II-C of the paper: per-client
// label distributions q_k, the population distribution q, the earth mover's
// distance ||q_k - q||, the K x K client divergence matrix D_t that feeds
// the DRL state, and the virtual-dataset mixing formula (Eq. 13) used by the
// surrogate training environment.

#ifndef FEDMIGR_DATA_DISTRIBUTION_H_
#define FEDMIGR_DATA_DISTRIBUTION_H_

#include <vector>

#include "data/dataset.h"
#include "data/partition.h"

namespace fedmigr::data {

// Normalized label histogram of the samples `indices` in `dataset`.
// An empty index list yields the all-zero vector.
std::vector<double> LabelDistribution(const Dataset& dataset,
                                      const std::vector<int>& indices);

// Label distribution of the entire dataset (the population distribution q).
std::vector<double> PopulationDistribution(const Dataset& dataset);

// L1 distance sum_l |a_l - b_l| — the EMD over the label simplex used
// throughout Section II-C (Eq. 11).
double EmdDistance(const std::vector<double>& a, const std::vector<double>& b);

// Per-client label distributions for a partition.
std::vector<std::vector<double>> ClientDistributions(
    const Dataset& dataset, const Partition& partition);

// Symmetric K x K matrix of pairwise EMDs between client distributions —
// the D_t component of the DRL state.
std::vector<std::vector<double>> DivergenceMatrix(
    const std::vector<std::vector<double>>& client_distributions);

// Eq. 13: effective distribution of a model that trained on `own` (weight
// n_own) and then on peers' data via M uniform migrations across clients
// whose total distribution is `population` (total weight n_total):
//   q' = (K * n_own * q_own + M * n_total * q) / (K * n_own + M * n_total).
std::vector<double> MigratedDistribution(const std::vector<double>& own,
                                         double n_own,
                                         const std::vector<double>& population,
                                         double n_total, int num_clients,
                                         int num_migrations);

// Mixture of two distributions with the given sample weights; the exact
// two-hop counterpart of MigratedDistribution used when a concrete
// destination is known: q' = (n_a q_a + n_b q_b) / (n_a + n_b).
std::vector<double> MixDistributions(const std::vector<double>& a, double n_a,
                                     const std::vector<double>& b, double n_b);

}  // namespace fedmigr::data

#endif  // FEDMIGR_DATA_DISTRIBUTION_H_
