// Synthetic benchmark datasets.
//
// The paper evaluates on CIFAR-10, CIFAR-100 and ImageNet-100, none of which
// are available offline. The FL behaviours the evaluation measures —
// accuracy loss under label skew, recovery via migration, traffic driven by
// model bytes — depend on *label-distribution structure*, not on natural
// image statistics, so we substitute Gaussian-prototype "images": every
// class c has a fixed prototype tensor, and a sample is prototype + noise.
// Class structure is learnable by the zoo models; heavier noise and more
// classes make the task harder (C100/ImageNet analogues).

#ifndef FEDMIGR_DATA_SYNTHETIC_H_
#define FEDMIGR_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"
#include "nn/tensor.h"
#include "util/rng.h"

namespace fedmigr::data {

struct SyntheticSpec {
  std::string name;        // diagnostic tag
  int num_classes = 10;
  nn::Shape sample_shape;  // e.g. {3, 8, 8} image or {64} flat
  int train_per_class = 100;
  int test_per_class = 20;
  double noise = 0.8;        // stddev of additive sample noise
  double prototype_scale = 1.0;  // stddev of prototype entries
  uint64_t seed = 17;
};

// The three dataset analogues used across the benches. Sizes are scaled so
// every bench finishes in seconds while keeping the relative difficulty
// ordering C10 < C100 <= ImageNet-100 from the paper.
SyntheticSpec C10Spec();
SyntheticSpec C100Spec();
SyntheticSpec ImageNet100Spec();

struct TrainTest {
  Dataset train;
  Dataset test;
};

// Materializes train and test splits drawn from the same class prototypes.
TrainTest GenerateSynthetic(const SyntheticSpec& spec);

}  // namespace fedmigr::data

#endif  // FEDMIGR_DATA_SYNTHETIC_H_
