// In-memory labeled dataset used by clients and the server evaluator.
//
// Features are stored as one contiguous tensor with the sample dimension
// first ([N, C, H, W] for image-like data, [N, D] for flat features), so a
// mini-batch is a contiguous copy.

#ifndef FEDMIGR_DATA_DATASET_H_
#define FEDMIGR_DATA_DATASET_H_

#include <vector>

#include "nn/tensor.h"
#include "util/rng.h"

namespace fedmigr::data {

class Dataset {
 public:
  Dataset() = default;
  // `features` must have the sample dimension first and one label per sample.
  Dataset(nn::Tensor features, std::vector<int> labels, int num_classes);

  int size() const { return static_cast<int>(labels_.size()); }
  int num_classes() const { return num_classes_; }
  const nn::Tensor& features() const { return features_; }
  const std::vector<int>& labels() const { return labels_; }
  int label(int i) const { return labels_[static_cast<size_t>(i)]; }

  // Shape of one sample (the feature shape without the leading N).
  nn::Shape sample_shape() const;
  // Elements per sample.
  int64_t sample_size() const;

  // Gathers the given samples into a batch tensor [B, ...] plus labels.
  void Gather(const std::vector<int>& indices, nn::Tensor* batch,
              std::vector<int>* batch_labels) const;

  // Materializes a new Dataset restricted to `indices`.
  Dataset Subset(const std::vector<int>& indices) const;

  // Per-class sample counts (length num_classes).
  std::vector<int> ClassCounts() const;

 private:
  nn::Tensor features_;
  std::vector<int> labels_;
  int num_classes_ = 0;
};

// Iterates a dataset (optionally restricted to an index list) in shuffled
// mini-batches. One pass over all samples is one local epoch.
class BatchIterator {
 public:
  // `indices` may be empty, meaning "all samples". The iterator keeps a
  // pointer to `dataset`; the dataset must outlive it.
  BatchIterator(const Dataset* dataset, std::vector<int> indices,
                int batch_size, util::Rng* rng);

  // Fills the next mini-batch. Returns false (and leaves outputs untouched)
  // once the epoch is exhausted; Reset() reshuffles and starts a new epoch.
  bool Next(nn::Tensor* batch, std::vector<int>* labels);
  void Reset();

  int num_samples() const { return static_cast<int>(indices_.size()); }
  int batch_size() const { return batch_size_; }
  // Batches per epoch (ceiling division).
  int batches_per_epoch() const;

 private:
  const Dataset* dataset_;
  std::vector<int> indices_;
  int batch_size_;
  util::Rng* rng_;
  size_t cursor_ = 0;
};

}  // namespace fedmigr::data

#endif  // FEDMIGR_DATA_DATASET_H_
