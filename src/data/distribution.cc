#include "data/distribution.h"

#include <cmath>

#include "util/logging.h"

namespace fedmigr::data {

std::vector<double> LabelDistribution(const Dataset& dataset,
                                      const std::vector<int>& indices) {
  std::vector<double> dist(static_cast<size_t>(dataset.num_classes()), 0.0);
  if (indices.empty()) return dist;
  for (int idx : indices) {
    ++dist[static_cast<size_t>(dataset.label(idx))];
  }
  for (auto& p : dist) p /= static_cast<double>(indices.size());
  return dist;
}

std::vector<double> PopulationDistribution(const Dataset& dataset) {
  std::vector<double> dist(static_cast<size_t>(dataset.num_classes()), 0.0);
  if (dataset.size() == 0) return dist;
  for (int i = 0; i < dataset.size(); ++i) {
    ++dist[static_cast<size_t>(dataset.label(i))];
  }
  for (auto& p : dist) p /= static_cast<double>(dataset.size());
  return dist;
}

double EmdDistance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  FEDMIGR_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

std::vector<std::vector<double>> ClientDistributions(
    const Dataset& dataset, const Partition& partition) {
  std::vector<std::vector<double>> dists;
  dists.reserve(partition.size());
  for (const auto& part : partition) {
    dists.push_back(LabelDistribution(dataset, part));
  }
  return dists;
}

std::vector<std::vector<double>> DivergenceMatrix(
    const std::vector<std::vector<double>>& client_distributions) {
  const size_t k = client_distributions.size();
  std::vector<std::vector<double>> matrix(k, std::vector<double>(k, 0.0));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = i + 1; j < k; ++j) {
      const double d =
          EmdDistance(client_distributions[i], client_distributions[j]);
      matrix[i][j] = d;
      matrix[j][i] = d;
    }
  }
  return matrix;
}

std::vector<double> MigratedDistribution(const std::vector<double>& own,
                                         double n_own,
                                         const std::vector<double>& population,
                                         double n_total, int num_clients,
                                         int num_migrations) {
  FEDMIGR_CHECK_EQ(own.size(), population.size());
  FEDMIGR_CHECK_GT(num_clients, 0);
  FEDMIGR_CHECK_GE(num_migrations, 0);
  const double k = static_cast<double>(num_clients);
  const double m = static_cast<double>(num_migrations);
  const double denom = k * n_own + m * n_total;
  std::vector<double> mixed(own.size());
  for (size_t l = 0; l < own.size(); ++l) {
    mixed[l] = (k * n_own * own[l] + m * n_total * population[l]) / denom;
  }
  return mixed;
}

std::vector<double> MixDistributions(const std::vector<double>& a, double n_a,
                                     const std::vector<double>& b,
                                     double n_b) {
  FEDMIGR_CHECK_EQ(a.size(), b.size());
  const double total = n_a + n_b;
  FEDMIGR_CHECK_GT(total, 0.0);
  std::vector<double> mixed(a.size());
  for (size_t l = 0; l < a.size(); ++l) {
    mixed[l] = (n_a * a[l] + n_b * b[l]) / total;
  }
  return mixed;
}

}  // namespace fedmigr::data
