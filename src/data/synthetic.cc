#include "data/synthetic.h"

#include <vector>

#include "nn/zoo.h"
#include "util/logging.h"

namespace fedmigr::data {

SyntheticSpec C10Spec() {
  SyntheticSpec spec;
  spec.name = "synth-c10";
  spec.num_classes = 10;
  spec.sample_shape = {nn::kImageChannels, nn::kImageSize, nn::kImageSize};
  spec.train_per_class = 100;
  spec.test_per_class = 25;
  spec.noise = 1.0;
  spec.seed = 101;
  return spec;
}

SyntheticSpec C100Spec() {
  SyntheticSpec spec;
  spec.name = "synth-c100";
  spec.num_classes = 100;
  spec.sample_shape = {nn::kImageChannels, nn::kImageSize, nn::kImageSize};
  spec.train_per_class = 20;
  spec.test_per_class = 5;
  spec.noise = 1.1;
  spec.seed = 202;
  return spec;
}

SyntheticSpec ImageNet100Spec() {
  SyntheticSpec spec;
  spec.name = "synth-imagenet100";
  spec.num_classes = 100;
  spec.sample_shape = {nn::kResFeatureDim};
  spec.train_per_class = 24;
  spec.test_per_class = 6;
  spec.noise = 1.2;
  spec.seed = 303;
  return spec;
}

namespace {

// Fills `sample` with prototype + noise.
void DrawSample(const std::vector<float>& prototype, double noise,
                util::Rng* rng, float* sample) {
  for (size_t i = 0; i < prototype.size(); ++i) {
    sample[i] =
        prototype[i] + static_cast<float>(rng->Normal(0.0, noise));
  }
}

Dataset GenerateSplit(const SyntheticSpec& spec,
                      const std::vector<std::vector<float>>& prototypes,
                      int per_class, util::Rng* rng) {
  const int64_t sample_size = nn::NumElements(spec.sample_shape);
  const int total = per_class * spec.num_classes;
  nn::Shape shape = spec.sample_shape;
  shape.insert(shape.begin(), total);
  nn::Tensor features(shape);
  std::vector<int> labels(static_cast<size_t>(total));
  // Interleave classes so any contiguous prefix is roughly balanced.
  int row = 0;
  for (int i = 0; i < per_class; ++i) {
    for (int c = 0; c < spec.num_classes; ++c) {
      DrawSample(prototypes[static_cast<size_t>(c)], spec.noise, rng,
                 features.data() + static_cast<int64_t>(row) * sample_size);
      labels[static_cast<size_t>(row)] = c;
      ++row;
    }
  }
  return Dataset(std::move(features), std::move(labels), spec.num_classes);
}

}  // namespace

TrainTest GenerateSynthetic(const SyntheticSpec& spec) {
  FEDMIGR_CHECK_GT(spec.num_classes, 0);
  FEDMIGR_CHECK_GT(spec.train_per_class, 0);
  FEDMIGR_CHECK_GT(spec.test_per_class, 0);
  util::Rng rng(spec.seed);

  const int64_t sample_size = nn::NumElements(spec.sample_shape);
  std::vector<std::vector<float>> prototypes(
      static_cast<size_t>(spec.num_classes));
  for (auto& prototype : prototypes) {
    prototype.resize(static_cast<size_t>(sample_size));
    for (auto& x : prototype) {
      x = static_cast<float>(rng.Normal(0.0, spec.prototype_scale));
    }
  }

  TrainTest out{
      GenerateSplit(spec, prototypes, spec.train_per_class, &rng),
      GenerateSplit(spec, prototypes, spec.test_per_class, &rng),
  };
  return out;
}

}  // namespace fedmigr::data
