// Client data partitioners.
//
// These implement every partition scheme the paper's evaluation uses
// (Sections IV-C and IV-D): IID, one-class-per-client shards, k-classes-per-
// client shards, the testbed's p%-dominance skew for CIFAR-10, and the
// class-lack skew for CIFAR-100. A partition is a list of index lists, one
// per client, into a train Dataset.

#ifndef FEDMIGR_DATA_PARTITION_H_
#define FEDMIGR_DATA_PARTITION_H_

#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace fedmigr::data {

using Partition = std::vector<std::vector<int>>;

// Uniform random split into `num_clients` equal-size parts.
Partition PartitionIid(const Dataset& dataset, int num_clients,
                       util::Rng* rng);

// Each client holds `classes_per_client` whole classes (the paper's non-IID
// setting: 1 class per client for C10 with 10 clients, 5 classes per client
// for C100 with 20 clients). Classes are dealt round-robin; requires
// num_classes == num_clients * classes_per_client for an exact deal, and
// otherwise deals as evenly as possible.
Partition PartitionByClassShards(const Dataset& dataset, int num_clients,
                                 int classes_per_client, util::Rng* rng);

// Testbed CIFAR-10 skew: client k holds fraction `p` of one unique class
// (class k % num_classes) and the remaining samples of every class are
// spread uniformly over the other clients. p = 1/num_classes reduces to IID.
Partition PartitionDominance(const Dataset& dataset, int num_clients, double p,
                             util::Rng* rng);

// LAN-correlated skew (the paper's motivating layout: "data collected by
// the clients within a LAN often have similar features and labels"). The
// label space is split contiguously across LANs; within a LAN every client
// receives the same mixture of that LAN's classes. `lan_of[k]` gives client
// k's LAN.
Partition PartitionByLanShards(const Dataset& dataset,
                               const std::vector<int>& lan_of,
                               util::Rng* rng);

// Testbed CIFAR-100 skew: every client lacks `lack_classes` classes
// (assigned round-robin); each class's samples are spread uniformly over the
// clients that do have it. lack_classes = 0 reduces to IID.
Partition PartitionClassLack(const Dataset& dataset, int num_clients,
                             int lack_classes, util::Rng* rng);

// Sanity helper: true iff every sample index appears in exactly one part.
bool IsExactCover(const Partition& partition, int dataset_size);

}  // namespace fedmigr::data

#endif  // FEDMIGR_DATA_PARTITION_H_
