#include "data/dataset.h"

#include <cstring>
#include <numeric>

#include "util/logging.h"

namespace fedmigr::data {

Dataset::Dataset(nn::Tensor features, std::vector<int> labels,
                 int num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  FEDMIGR_CHECK_GE(features_.ndim(), 2);
  FEDMIGR_CHECK_EQ(features_.dim(0), static_cast<int>(labels_.size()));
  FEDMIGR_CHECK_GT(num_classes_, 0);
  for (int label : labels_) {
    FEDMIGR_CHECK_GE(label, 0);
    FEDMIGR_CHECK_LT(label, num_classes_);
  }
}

nn::Shape Dataset::sample_shape() const {
  nn::Shape shape = features_.shape();
  shape.erase(shape.begin());
  return shape;
}

int64_t Dataset::sample_size() const { return nn::NumElements(sample_shape()); }

void Dataset::Gather(const std::vector<int>& indices, nn::Tensor* batch,
                     std::vector<int>* batch_labels) const {
  const int64_t stride = sample_size();
  nn::Shape batch_shape = features_.shape();
  batch_shape[0] = static_cast<int>(indices.size());
  *batch = nn::Tensor(batch_shape);
  batch_labels->resize(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    const int idx = indices[i];
    FEDMIGR_CHECK_GE(idx, 0);
    FEDMIGR_CHECK_LT(idx, size());
    std::memcpy(batch->data() + static_cast<int64_t>(i) * stride,
                features_.data() + static_cast<int64_t>(idx) * stride,
                static_cast<size_t>(stride) * sizeof(float));
    (*batch_labels)[i] = labels_[static_cast<size_t>(idx)];
  }
}

Dataset Dataset::Subset(const std::vector<int>& indices) const {
  nn::Tensor batch;
  std::vector<int> labels;
  Gather(indices, &batch, &labels);
  return Dataset(std::move(batch), std::move(labels), num_classes_);
}

std::vector<int> Dataset::ClassCounts() const {
  std::vector<int> counts(static_cast<size_t>(num_classes_), 0);
  for (int label : labels_) ++counts[static_cast<size_t>(label)];
  return counts;
}

BatchIterator::BatchIterator(const Dataset* dataset, std::vector<int> indices,
                             int batch_size, util::Rng* rng)
    : dataset_(dataset),
      indices_(std::move(indices)),
      batch_size_(batch_size),
      rng_(rng) {
  FEDMIGR_CHECK(dataset_ != nullptr);
  FEDMIGR_CHECK_GT(batch_size_, 0);
  if (indices_.empty()) {
    indices_.resize(static_cast<size_t>(dataset_->size()));
    std::iota(indices_.begin(), indices_.end(), 0);
  }
  Reset();
}

bool BatchIterator::Next(nn::Tensor* batch, std::vector<int>* labels) {
  if (cursor_ >= indices_.size()) return false;
  const size_t end =
      std::min(cursor_ + static_cast<size_t>(batch_size_), indices_.size());
  const std::vector<int> batch_indices(indices_.begin() + cursor_,
                                       indices_.begin() + end);
  cursor_ = end;
  dataset_->Gather(batch_indices, batch, labels);
  return true;
}

void BatchIterator::Reset() {
  cursor_ = 0;
  if (rng_ != nullptr) rng_->Shuffle(indices_);
}

int BatchIterator::batches_per_epoch() const {
  return static_cast<int>((indices_.size() + batch_size_ - 1) /
                          static_cast<size_t>(batch_size_));
}

}  // namespace fedmigr::data
