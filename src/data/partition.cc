#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace fedmigr::data {

namespace {

// Indices of each class, shuffled.
std::vector<std::vector<int>> ClassIndexLists(const Dataset& dataset,
                                              util::Rng* rng) {
  std::vector<std::vector<int>> by_class(
      static_cast<size_t>(dataset.num_classes()));
  for (int i = 0; i < dataset.size(); ++i) {
    by_class[static_cast<size_t>(dataset.label(i))].push_back(i);
  }
  for (auto& list : by_class) rng->Shuffle(list);
  return by_class;
}

// Deals `items` as evenly as possible across `num_parts` parts, appending.
void DealRoundRobin(const std::vector<int>& items, int num_parts,
                    Partition* parts, const std::vector<int>& part_ids) {
  FEDMIGR_CHECK_EQ(static_cast<int>(part_ids.size()), num_parts);
  for (size_t i = 0; i < items.size(); ++i) {
    const int part = part_ids[i % static_cast<size_t>(num_parts)];
    (*parts)[static_cast<size_t>(part)].push_back(items[i]);
  }
}

}  // namespace

Partition PartitionIid(const Dataset& dataset, int num_clients,
                       util::Rng* rng) {
  FEDMIGR_CHECK_GT(num_clients, 0);
  std::vector<int> all(static_cast<size_t>(dataset.size()));
  std::iota(all.begin(), all.end(), 0);
  rng->Shuffle(all);
  Partition parts(static_cast<size_t>(num_clients));
  for (size_t i = 0; i < all.size(); ++i) {
    parts[i % static_cast<size_t>(num_clients)].push_back(all[i]);
  }
  return parts;
}

Partition PartitionByClassShards(const Dataset& dataset, int num_clients,
                                 int classes_per_client, util::Rng* rng) {
  FEDMIGR_CHECK_GT(num_clients, 0);
  FEDMIGR_CHECK_GT(classes_per_client, 0);
  const int num_classes = dataset.num_classes();
  auto by_class = ClassIndexLists(dataset, rng);

  // Deal whole classes to clients round-robin: client k gets classes
  // k, k + K, k + 2K, ... With num_classes == K * classes_per_client this is
  // an exact deal matching the paper's setting.
  Partition parts(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_classes; ++c) {
    const int client = c % num_clients;
    auto& part = parts[static_cast<size_t>(client)];
    const auto& idx = by_class[static_cast<size_t>(c)];
    part.insert(part.end(), idx.begin(), idx.end());
  }
  return parts;
}

Partition PartitionDominance(const Dataset& dataset, int num_clients, double p,
                             util::Rng* rng) {
  FEDMIGR_CHECK_GT(num_clients, 0);
  FEDMIGR_CHECK_GE(p, 0.0);
  FEDMIGR_CHECK_LE(p, 1.0);
  const int num_classes = dataset.num_classes();
  auto by_class = ClassIndexLists(dataset, rng);
  Partition parts(static_cast<size_t>(num_clients));

  // Owners of each class: client k dominates class k % num_classes.
  for (int c = 0; c < num_classes; ++c) {
    const auto& idx = by_class[static_cast<size_t>(c)];
    const int take = static_cast<int>(p * static_cast<double>(idx.size()));
    // Dominant share to every client whose unique class is c.
    std::vector<int> dominant_clients;
    for (int k = 0; k < num_clients; ++k) {
      if (k % num_classes == c) dominant_clients.push_back(k);
    }
    size_t cursor = 0;
    if (!dominant_clients.empty()) {
      // Split the dominant share among all claimants (usually one).
      for (size_t d = 0; d < dominant_clients.size(); ++d) {
        const size_t share =
            static_cast<size_t>(take) / dominant_clients.size();
        auto& part = parts[static_cast<size_t>(dominant_clients[d])];
        for (size_t i = 0; i < share && cursor < idx.size(); ++i) {
          part.push_back(idx[cursor++]);
        }
      }
    }
    // Remainder uniformly across the non-dominant clients.
    std::vector<int> others;
    for (int k = 0; k < num_clients; ++k) {
      if (k % num_classes != c) others.push_back(k);
    }
    if (others.empty()) {
      for (int k = 0; k < num_clients; ++k) others.push_back(k);
    }
    size_t j = 0;
    while (cursor < idx.size()) {
      parts[static_cast<size_t>(others[j % others.size()])].push_back(
          idx[cursor++]);
      ++j;
    }
  }
  return parts;
}

Partition PartitionByLanShards(const Dataset& dataset,
                               const std::vector<int>& lan_of,
                               util::Rng* rng) {
  FEDMIGR_CHECK(!lan_of.empty());
  const int num_clients = static_cast<int>(lan_of.size());
  int num_lans = 0;
  for (int lan : lan_of) num_lans = std::max(num_lans, lan + 1);
  const int num_classes = dataset.num_classes();
  FEDMIGR_CHECK_GE(num_classes, num_lans);
  auto by_class = ClassIndexLists(dataset, rng);

  // Contiguous class blocks per LAN (remainder to the last LAN).
  const int classes_per_lan = num_classes / num_lans;
  auto lan_of_class = [&](int c) {
    return std::min(c / classes_per_lan, num_lans - 1);
  };

  Partition parts(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_classes; ++c) {
    const int lan = lan_of_class(c);
    std::vector<int> members;
    for (int k = 0; k < num_clients; ++k) {
      if (lan_of[static_cast<size_t>(k)] == lan) members.push_back(k);
    }
    FEDMIGR_CHECK(!members.empty())
        << "LAN " << lan << " has no clients for class " << c;
    DealRoundRobin(by_class[static_cast<size_t>(c)],
                   static_cast<int>(members.size()), &parts, members);
  }
  return parts;
}

Partition PartitionClassLack(const Dataset& dataset, int num_clients,
                             int lack_classes, util::Rng* rng) {
  FEDMIGR_CHECK_GT(num_clients, 0);
  FEDMIGR_CHECK_GE(lack_classes, 0);
  const int num_classes = dataset.num_classes();
  FEDMIGR_CHECK_LT(lack_classes, num_classes);
  auto by_class = ClassIndexLists(dataset, rng);

  // Client k lacks a contiguous window of `lack_classes` classes starting
  // at an evenly-spread offset (window starts cover the whole class circle
  // even when there are fewer clients than classes, so every class keeps
  // at least one holder as long as lack_classes < num_classes - spacing).
  auto window_start = [&](int client) {
    return static_cast<int>(static_cast<int64_t>(client) * num_classes /
                            num_clients);
  };
  auto lacks = [&](int client, int c) {
    const int offset =
        (c - window_start(client) + num_classes) % num_classes;
    return offset < lack_classes;
  };

  Partition parts(static_cast<size_t>(num_clients));
  for (int c = 0; c < num_classes; ++c) {
    std::vector<int> holders;
    for (int k = 0; k < num_clients; ++k) {
      if (!lacks(k, c)) holders.push_back(k);
    }
    FEDMIGR_CHECK(!holders.empty());
    // Shuffle so classes with fewer samples than holders don't
    // systematically starve the highest-id holders.
    rng->Shuffle(holders);
    DealRoundRobin(by_class[static_cast<size_t>(c)],
                   static_cast<int>(holders.size()), &parts, holders);
  }
  return parts;
}

bool IsExactCover(const Partition& partition, int dataset_size) {
  std::vector<int> seen(static_cast<size_t>(dataset_size), 0);
  for (const auto& part : partition) {
    for (int idx : part) {
      if (idx < 0 || idx >= dataset_size) return false;
      if (++seen[static_cast<size_t>(idx)] > 1) return false;
    }
  }
  for (int count : seen) {
    if (count != 1) return false;
  }
  return true;
}

}  // namespace fedmigr::data
