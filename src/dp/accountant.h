// Privacy-budget accounting across training epochs. We track basic
// (sequential) composition: k releases of an (ε₀, δ₀)-DP mechanism are
// (k·ε₀, k·δ₀)-DP. This is deliberately the simplest sound accountant; the
// paper only sweeps total budgets ε ∈ {∞, 150, 100}.

#ifndef FEDMIGR_DP_ACCOUNTANT_H_
#define FEDMIGR_DP_ACCOUNTANT_H_

namespace fedmigr::dp {

class PrivacyAccountant {
 public:
  // total_epsilon <= 0 disables accounting (infinite budget).
  PrivacyAccountant(double total_epsilon, double total_delta);

  // Registers one mechanism invocation with the given per-release cost.
  void Spend(double epsilon, double delta);

  double epsilon_spent() const { return epsilon_spent_; }
  double delta_spent() const { return delta_spent_; }
  double epsilon_remaining() const;
  bool Exhausted() const;

  // Per-release ε when the total budget is to be split over k releases.
  static double PerReleaseEpsilon(double total_epsilon, int releases);

 private:
  double total_epsilon_;
  double total_delta_;
  double epsilon_spent_ = 0.0;
  double delta_spent_ = 0.0;
};

}  // namespace fedmigr::dp

#endif  // FEDMIGR_DP_ACCOUNTANT_H_
