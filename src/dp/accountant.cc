#include "dp/accountant.h"

#include <limits>

#include "util/logging.h"

namespace fedmigr::dp {

PrivacyAccountant::PrivacyAccountant(double total_epsilon, double total_delta)
    : total_epsilon_(total_epsilon <= 0.0
                         ? std::numeric_limits<double>::infinity()
                         : total_epsilon),
      total_delta_(total_delta) {}

void PrivacyAccountant::Spend(double epsilon, double delta) {
  FEDMIGR_CHECK_GE(epsilon, 0.0);
  FEDMIGR_CHECK_GE(delta, 0.0);
  epsilon_spent_ += epsilon;
  delta_spent_ += delta;
}

double PrivacyAccountant::epsilon_remaining() const {
  return total_epsilon_ - epsilon_spent_;
}

bool PrivacyAccountant::Exhausted() const {
  return epsilon_spent_ > total_epsilon_ || delta_spent_ > total_delta_;
}

double PrivacyAccountant::PerReleaseEpsilon(double total_epsilon,
                                            int releases) {
  FEDMIGR_CHECK_GT(releases, 0);
  if (total_epsilon <= 0.0) return 0.0;
  return total_epsilon / releases;
}

}  // namespace fedmigr::dp
