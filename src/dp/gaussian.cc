#include "dp/gaussian.h"

#include <cmath>

#include "nn/serialize.h"
#include "util/logging.h"

namespace fedmigr::dp {

double GaussianSigma(const DpConfig& config) {
  FEDMIGR_CHECK(config.enabled());
  FEDMIGR_CHECK_GT(config.delta, 0.0);
  FEDMIGR_CHECK_LT(config.delta, 1.0);
  return config.clip_norm * std::sqrt(2.0 * std::log(1.25 / config.delta)) /
         config.epsilon;
}

double ClipL2(std::vector<float>* flat, double clip_norm) {
  FEDMIGR_CHECK_GT(clip_norm, 0.0);
  double norm_sq = 0.0;
  for (float x : *flat) norm_sq += static_cast<double>(x) * x;
  const double norm = std::sqrt(norm_sq);
  if (norm <= clip_norm) return 1.0;
  const double factor = clip_norm / norm;
  for (auto& x : *flat) x = static_cast<float>(x * factor);
  return factor;
}

void AddGaussianNoise(std::vector<float>* flat, double sigma,
                      util::Rng* rng) {
  FEDMIGR_CHECK_GE(sigma, 0.0);
  if (sigma == 0.0) return;
  for (auto& x : *flat) {
    x += static_cast<float>(rng->Normal(0.0, sigma));
  }
}

void PrivatizeModel(const DpConfig& config, nn::Sequential* model,
                    util::Rng* rng) {
  if (!config.enabled()) return;
  std::vector<float> flat = nn::FlattenParams(*model);
  ClipL2(&flat, config.clip_norm);
  // Per-coordinate noise scaled down by sqrt(dim): the release is one
  // vector-valued query with L2 sensitivity C, so the mechanism's total
  // noise norm is what the (ε, δ) bound constrains.
  const double sigma =
      GaussianSigma(config) / std::sqrt(static_cast<double>(flat.size()));
  AddGaussianNoise(&flat, sigma, rng);
  FEDMIGR_CHECK(nn::UnflattenParams(flat, model).ok());
}

}  // namespace fedmigr::dp
