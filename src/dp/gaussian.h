// Differential privacy for transmitted models (Section III-E of the paper):
// L2 clipping (Eq. 30) followed by the Gaussian mechanism (Eq. 31), with the
// noise scale derived from an (ε, δ) budget.

#ifndef FEDMIGR_DP_GAUSSIAN_H_
#define FEDMIGR_DP_GAUSSIAN_H_

#include <vector>

#include "nn/sequential.h"
#include "util/rng.h"

namespace fedmigr::dp {

struct DpConfig {
  // epsilon <= 0 means "privacy off" (the paper's ε = ∞ runs).
  double epsilon = 0.0;
  double delta = 1e-5;
  // Clipping threshold C for the whole parameter vector (Eq. 30).
  double clip_norm = 10.0;
  bool enabled() const { return epsilon > 0.0; }
};

// Gaussian-mechanism noise scale for one release:
// sigma = C * sqrt(2 ln(1.25/δ)) / ε (Abadi-style analytic bound).
double GaussianSigma(const DpConfig& config);

// Clips the flat vector to L2 norm `clip_norm` (Eq. 30). Returns the factor
// applied (1.0 when no clipping occurred).
double ClipL2(std::vector<float>* flat, double clip_norm);

// Adds N(0, sigma^2) noise to every coordinate (Eq. 31).
void AddGaussianNoise(std::vector<float>* flat, double sigma, util::Rng* rng);

// Full pipeline applied to a model in place: flatten, clip, perturb,
// restore. No-op when config.enabled() is false.
void PrivatizeModel(const DpConfig& config, nn::Sequential* model,
                    util::Rng* rng);

}  // namespace fedmigr::dp

#endif  // FEDMIGR_DP_GAUSSIAN_H_
