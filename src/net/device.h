// Heterogeneous device compute model.
//
// The paper's testbed mixes NVIDIA Jetson TX2 and Xavier NX workers (plus a
// GPU workstation server). We model a device by its training throughput in
// processed samples per second, scaled by a per-model cost factor
// proportional to parameter count, so larger models train slower — the same
// first-order behaviour the testbed exhibits.

#ifndef FEDMIGR_NET_DEVICE_H_
#define FEDMIGR_NET_DEVICE_H_

#include <cstdint>
#include <vector>

namespace fedmigr::net {

enum class DeviceType {
  kJetsonTx2,
  kXavierNx,
  kWorkstation,
};

struct DeviceProfile {
  DeviceType type = DeviceType::kJetsonTx2;
  // Mini-batch samples processed per second for the reference model size.
  double samples_per_second = 200.0;
};

DeviceProfile MakeProfile(DeviceType type);

// Seconds to run `num_samples` training samples of a model with
// `model_params` parameters on this device. `reference_params` anchors the
// cost factor (the C10 CNN's size).
double ComputeSeconds(const DeviceProfile& device, int64_t num_samples,
                      int64_t model_params,
                      int64_t reference_params = 10000);

// The paper's testbed fleet: alternating TX2 / NX assignment.
std::vector<DeviceProfile> MakeTestbedFleet(int num_clients);
// Homogeneous simulation fleet.
std::vector<DeviceProfile> MakeUniformFleet(int num_clients,
                                            double samples_per_second = 200.0);

}  // namespace fedmigr::net

#endif  // FEDMIGR_NET_DEVICE_H_
