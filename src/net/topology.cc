#include "net/topology.h"

#include <algorithm>

#include "util/logging.h"

namespace fedmigr::net {

std::vector<int> EvenLanAssignment(int num_clients, int num_lans) {
  FEDMIGR_CHECK_GT(num_clients, 0);
  FEDMIGR_CHECK_GT(num_lans, 0);
  std::vector<int> lan_of(static_cast<size_t>(num_clients));
  // Contiguous blocks, remainder spread over the first LANs — matches the
  // 4/3/3 split for 10 clients over 3 LANs.
  const int base = num_clients / num_lans;
  const int extra = num_clients % num_lans;
  int client = 0;
  for (int lan = 0; lan < num_lans; ++lan) {
    const int size = base + (lan < extra ? 1 : 0);
    for (int i = 0; i < size; ++i) {
      lan_of[static_cast<size_t>(client++)] = lan;
    }
  }
  return lan_of;
}

Topology::Topology(TopologyConfig config) : config_(std::move(config)) {
  FEDMIGR_CHECK(!config_.lan_of.empty());
  FEDMIGR_CHECK_GT(config_.intra_lan_mbps, 0.0);
  FEDMIGR_CHECK_GT(config_.cross_lan_mbps, 0.0);
  FEDMIGR_CHECK_GT(config_.wan_mbps, 0.0);
  for (int lan : config_.lan_of) {
    FEDMIGR_CHECK_GE(lan, 0);
    num_lans_ = std::max(num_lans_, lan + 1);
  }
  // The dense K x K multiplier table is allocated lazily on the first
  // SetLinkMultiplier call: at fleet scale (K = 10^6) the table would be
  // 8 TB, and the sharded simulator never customizes links there.
}

int Topology::lan_of(int client) const {
  FEDMIGR_CHECK_GE(client, 0);
  FEDMIGR_CHECK_LT(client, num_clients());
  return config_.lan_of[static_cast<size_t>(client)];
}

int64_t Topology::LinkIndex(int a, int b) const {
  // 64-bit: a * K + b overflows int once K exceeds ~46k clients.
  return static_cast<int64_t>(a) * num_clients() + b;
}

double Topology::BandwidthMbps(int src, int dst) const {
  FEDMIGR_CHECK_NE(src, dst);
  if (src == kServerId || dst == kServerId) return config_.wan_mbps;
  const double base = SameLan(src, dst) ? config_.intra_lan_mbps
                                        : config_.cross_lan_mbps;
  return base * LinkMultiplier(src, dst);
}

double Topology::TransferSeconds(int src, int dst, int64_t bytes) const {
  const double mbps = BandwidthMbps(src, dst);
  const double bits = static_cast<double>(bytes) * 8.0;
  return config_.link_latency_s + bits / (mbps * 1e6);
}

void Topology::SetLinkMultiplier(int a, int b, double multiplier) {
  FEDMIGR_CHECK_GE(a, 0);
  FEDMIGR_CHECK_GE(b, 0);
  FEDMIGR_CHECK_NE(a, b);
  FEDMIGR_CHECK_GT(multiplier, 0.0);
  if (multipliers_.empty()) {
    const size_t k = config_.lan_of.size();
    multipliers_.assign(k * k, 1.0);
  }
  multipliers_[static_cast<size_t>(LinkIndex(a, b))] = multiplier;
  multipliers_[static_cast<size_t>(LinkIndex(b, a))] = multiplier;
}

double Topology::LinkMultiplier(int a, int b) const {
  if (multipliers_.empty()) return 1.0;
  return multipliers_[static_cast<size_t>(LinkIndex(a, b))];
}

Topology MakeC10SimTopology() {
  TopologyConfig config;
  config.lan_of = {0, 0, 0, 0, 1, 1, 1, 2, 2, 2};
  return Topology(std::move(config));
}

Topology MakeC100SimTopology() {
  TopologyConfig config;
  config.lan_of = EvenLanAssignment(20, 5);
  return Topology(std::move(config));
}

}  // namespace fedmigr::net
