#include "net/traffic.h"

#include <algorithm>

#include "net/topology.h"
#include "util/logging.h"

namespace fedmigr::net {

std::pair<int, int> TrafficAccountant::Key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

void TrafficAccountant::Record(int src, int dst, int64_t bytes) {
  FEDMIGR_CHECK_GE(bytes, 0);
  FEDMIGR_CHECK_NE(src, dst);
  ++num_transfers_;
  if (src == kServerId || dst == kServerId) {
    c2s_bytes_ += bytes;
  } else {
    c2c_bytes_ += bytes;
  }
  const auto key = Key(src, dst);
  link_counts_[key] += 1;
  link_bytes_[key] += bytes;
}

double TrafficAccountant::total_gb() const {
  return static_cast<double>(total_bytes()) / 1e9;
}

double TrafficAccountant::c2s_gb() const {
  return static_cast<double>(c2s_bytes_) / 1e9;
}

double TrafficAccountant::c2c_gb() const {
  return static_cast<double>(c2c_bytes_) / 1e9;
}

int64_t TrafficAccountant::LinkCount(int a, int b) const {
  const auto it = link_counts_.find(Key(a, b));
  return it == link_counts_.end() ? 0 : it->second;
}

int64_t TrafficAccountant::LinkBytes(int a, int b) const {
  const auto it = link_bytes_.find(Key(a, b));
  return it == link_bytes_.end() ? 0 : it->second;
}

void TrafficAccountant::Reset() {
  c2s_bytes_ = 0;
  c2c_bytes_ = 0;
  num_transfers_ = 0;
  link_counts_.clear();
  link_bytes_.clear();
}

}  // namespace fedmigr::net
