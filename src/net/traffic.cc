#include "net/traffic.h"

#include <algorithm>

#include "net/topology.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace fedmigr::net {

std::pair<int, int> TrafficAccountant::Key(int a, int b) {
  return {std::min(a, b), std::max(a, b)};
}

void TrafficAccountant::Record(int src, int dst, int64_t bytes) {
  FEDMIGR_CHECK_GE(bytes, 0);
  FEDMIGR_CHECK_NE(src, dst);
  ++num_transfers_;
  const bool server_hop = src == kServerId || dst == kServerId;
  if (server_hop) {
    c2s_bytes_ += bytes;
    if (dst == kServerId) {
      c2s_up_bytes_ += bytes;
    } else {
      c2s_down_bytes_ += bytes;
    }
  } else {
    c2c_bytes_ += bytes;
  }
  // Live registry mirror, split by link class (server hop vs peer-to-peer).
  if (obs::Telemetry::enabled()) {
    static obs::Counter* transfers =
        obs::Registry::Default().GetCounter("net/transfers");
    static obs::Counter* c2s_live =
        obs::Registry::Default().GetCounter("net/c2s_bytes");
    static obs::Counter* c2c_live =
        obs::Registry::Default().GetCounter("net/c2c_bytes");
    transfers->Increment();
    (server_hop ? c2s_live : c2c_live)->Add(bytes);
  }
  const auto key = Key(src, dst);
  link_counts_[key] += 1;
  link_bytes_[key] += bytes;
}

double TrafficAccountant::total_gb() const {
  return static_cast<double>(total_bytes()) / 1e9;
}

double TrafficAccountant::c2s_gb() const {
  return static_cast<double>(c2s_bytes_) / 1e9;
}

double TrafficAccountant::c2c_gb() const {
  return static_cast<double>(c2c_bytes_) / 1e9;
}

double TrafficAccountant::c2s_up_gb() const {
  return static_cast<double>(c2s_up_bytes_) / 1e9;
}

double TrafficAccountant::c2s_down_gb() const {
  return static_cast<double>(c2s_down_bytes_) / 1e9;
}

int64_t TrafficAccountant::LinkCount(int a, int b) const {
  const auto it = link_counts_.find(Key(a, b));
  return it == link_counts_.end() ? 0 : it->second;
}

int64_t TrafficAccountant::LinkBytes(int a, int b) const {
  const auto it = link_bytes_.find(Key(a, b));
  return it == link_bytes_.end() ? 0 : it->second;
}

void TrafficAccountant::Reset() {
  c2s_bytes_ = 0;
  c2c_bytes_ = 0;
  c2s_up_bytes_ = 0;
  c2s_down_bytes_ = 0;
  num_transfers_ = 0;
  link_counts_.clear();
  link_bytes_.clear();
}

namespace {

void WriteLinkMap(util::ByteWriter* writer,
                  const std::map<std::pair<int, int>, int64_t>& entries) {
  writer->WriteU64(entries.size());
  for (const auto& [key, value] : entries) {
    writer->WriteI32(key.first);
    writer->WriteI32(key.second);
    writer->WriteI64(value);
  }
}

util::Status ReadLinkMap(util::ByteReader* reader,
                         std::map<std::pair<int, int>, int64_t>* entries) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&count));
  if (count > reader->remaining()) {
    return util::Status::InvalidArgument("link map size exceeds buffer");
  }
  entries->clear();
  for (uint64_t i = 0; i < count; ++i) {
    int32_t a = 0;
    int32_t b = 0;
    int64_t value = 0;
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&a));
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&b));
    FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&value));
    (*entries)[{a, b}] = value;
  }
  return util::Status::Ok();
}

}  // namespace

void TrafficAccountant::SaveState(util::ByteWriter* writer) const {
  writer->WriteI64(c2s_bytes_);
  writer->WriteI64(c2c_bytes_);
  writer->WriteI64(c2s_up_bytes_);
  writer->WriteI64(c2s_down_bytes_);
  writer->WriteI64(num_transfers_);
  WriteLinkMap(writer, link_counts_);
  WriteLinkMap(writer, link_bytes_);
}

util::Status TrafficAccountant::LoadState(util::ByteReader* reader) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&c2s_bytes_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&c2c_bytes_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&c2s_up_bytes_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&c2s_down_bytes_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&num_transfers_));
  FEDMIGR_RETURN_IF_ERROR(ReadLinkMap(reader, &link_counts_));
  FEDMIGR_RETURN_IF_ERROR(ReadLinkMap(reader, &link_bytes_));
  return util::Status::Ok();
}

}  // namespace fedmigr::net
