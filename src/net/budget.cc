#include "net/budget.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedmigr::net {

Budget::Budget(double compute_budget, double bandwidth_budget_bytes,
               double time_budget_s)
    : compute_budget_(compute_budget),
      bandwidth_budget_(bandwidth_budget_bytes),
      time_budget_(time_budget_s) {
  FEDMIGR_CHECK_GT(compute_budget_, 0.0);
  FEDMIGR_CHECK_GT(bandwidth_budget_, 0.0);
  FEDMIGR_CHECK_GT(time_budget_, 0.0);
}

void Budget::ConsumeCompute(double units) {
  FEDMIGR_CHECK_GE(units, 0.0);
  compute_used_ += units;
}

void Budget::ConsumeBandwidth(double bytes) {
  FEDMIGR_CHECK_GE(bytes, 0.0);
  bandwidth_used_ += bytes;
}

void Budget::ConsumeTime(double seconds) {
  FEDMIGR_CHECK_GE(seconds, 0.0);
  time_used_ += seconds;
}

double Budget::ComputeUsedFraction() const {
  if (std::isinf(compute_budget_)) return 0.0;
  return std::min(1.0, compute_used_ / compute_budget_);
}

double Budget::BandwidthUsedFraction() const {
  if (std::isinf(bandwidth_budget_)) return 0.0;
  return std::min(1.0, bandwidth_used_ / bandwidth_budget_);
}

void Budget::SaveState(util::ByteWriter* writer) const {
  writer->WriteF64(compute_used_);
  writer->WriteF64(bandwidth_used_);
  writer->WriteF64(time_used_);
}

util::Status Budget::LoadState(util::ByteReader* reader) {
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&compute_used_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&bandwidth_used_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&time_used_));
  if (!(compute_used_ >= 0.0) || !(bandwidth_used_ >= 0.0) ||
      !(time_used_ >= 0.0)) {
    return util::Status::InvalidArgument("negative budget consumption");
  }
  return util::Status::Ok();
}

}  // namespace fedmigr::net
