// Fault injection for the edge-network simulator.
//
// The paper's setting is an unreliable heterogeneous edge: clients
// "dynamically join and leave the system" (Sec. III-C), links degrade, and
// in-flight model transfers can be interrupted (the problem FedFly is built
// around). `FaultInjector` models that world deterministically from a seed:
//
//   - per-attempt link failure (a transfer dies mid-flight),
//   - bandwidth degradation jitter (a transfer runs slower than nominal),
//   - client crash windows (a client is down for a sampled number of epochs),
//   - straggler slowdown multipliers (a client computes/transmits slower),
//   - payload corruption (a transfer arrives, but bit-flipped).
//
// `Transfer()` is the fault-aware transfer primitive: bounded retry with
// exponential backoff and an optional per-transfer deadline. Failed attempts
// are still charged to the TrafficAccountant and the simulated clock — an
// interrupted migration wastes real bandwidth and time.
//
// With every probability at zero (the default config) the injector is a
// strict no-op: Transfer() produces byte-identical accounting to the direct
// path, no RNG state leaks into the caller (the injector draws from its own
// stream), and Begin/IsCrashed/SlowdownFactor are free.
//
// On top of the per-link/per-client faults sits the *infrastructure* chaos
// layer (ChaosConfig): scheduled LAN partition windows, edge-server outage
// windows and fleet churn. All three are pure functions of the config and
// the epoch counter — no RNG is drawn for them, so enabling a window cannot
// perturb the link/crash/straggler streams, and a resumed run only needs
// the serialized epoch counter to replay the same schedule.

#ifndef FEDMIGR_NET_FAULT_H_
#define FEDMIGR_NET_FAULT_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "net/topology.h"
#include "net/traffic.h"
#include "util/rng.h"
#include "util/serial.h"
#include "util/status.h"

namespace fedmigr::net {

// Byzantine (adversarial) client behavior. Unlike the link faults above,
// these tamper with the *content* of an update before it is serialized, so
// CRC framing cannot catch them — the robust-aggregation layer (fl/robust)
// has to. The tampering itself is applied by the fl layer (it needs the
// model); the injector only decides *who* attacks and owns the dedicated
// RNG stream the tampering draws from.
enum class AttackMode {
  kNone = 0,
  kSignFlip,          // w <- -w (gradient-ascent poisoning)
  kGaussianNoise,     // w <- w + N(0, attack_scale^2) per coordinate
  kScaledModel,       // w <- attack_scale * w (model boosting)
  kSilentCorruption,  // sparse finite garbage written pre-serialization;
                      // passes CRC32 and the NaN gate by construction
  kNanInjection,      // w <- NaN (a diverged or bricked client)
};

// "none" | "sign-flip" | "gaussian" | "scale" | "silent" | "nan".
bool ParseAttackMode(const std::string& name, AttackMode* mode);
const char* AttackModeName(AttackMode mode);

// One scheduled LAN partition: while epoch is inside
// [start_epoch, start_epoch + duration_epochs) every transfer crossing the
// sealed LAN's boundary — including hops to the edge server — fails fast.
// Intra-LAN traffic continues. Epochs are 1-based BeginEpoch ticks.
struct PartitionWindow {
  int lan = 0;
  int start_epoch = 1;
  int duration_epochs = 1;
};

// One scheduled edge-server outage: transfers touching kServerId fail fast
// while the window is active; C2C traffic is unaffected.
struct OutageWindow {
  int start_epoch = 1;
  int duration_epochs = 1;
};

// Infrastructure-level chaos schedule. Everything here is a pure function
// of (config, epoch) or (config, client, round): no RNG stream is consumed,
// so a zeroed ChaosConfig is indistinguishable from no chaos at all and the
// schedule replays identically after a snapshot resume.
struct ChaosConfig {
  // Explicit partition windows, plus an optional recurring generator: when
  // partition_period > 0, LAN `partition_lan` is sealed for
  // `partition_epochs` epochs starting at every
  // partition_phase + n * partition_period.
  std::vector<PartitionWindow> partitions;
  int partition_period = 0;  // 0 = generator off
  int partition_phase = 1;
  int partition_lan = 0;
  int partition_epochs = 1;
  // Edge-server outage windows and the matching recurring generator.
  std::vector<OutageWindow> outages;
  int outage_period = 0;  // 0 = generator off
  int outage_phase = 1;
  int outage_epochs = 1;
  // Fleet churn: per-round probability that a given client is out of the
  // fleet, decided by a pure hash of (churn_seed, client, round). The fl
  // layer applies the membership semantics (absences from the sampled
  // cohort, departures that discard private state, re-joins minting from
  // the current aggregate); the knob lives here so one FaultConfig
  // describes the whole failure model.
  double churn_rate = 0.0;
  uint64_t churn_seed = 101;

  bool has_partitions() const {
    return !partitions.empty() || partition_period > 0;
  }
  bool has_outages() const { return !outages.empty() || outage_period > 0; }
  bool enabled() const {
    return has_partitions() || has_outages() || churn_rate > 0.0;
  }
};

struct FaultConfig {
  // Per-attempt probability that a transfer fails in flight.
  double link_failure_prob = 0.0;
  // Bandwidth degradation: each attempt is slowed by a factor drawn
  // uniformly from [1, 1 + bandwidth_jitter]. 0 = nominal bandwidth.
  double bandwidth_jitter = 0.0;
  // Per-epoch probability that a healthy client crashes. A crashed client
  // is down for a number of epochs drawn uniformly from
  // [crash_min_epochs, crash_max_epochs].
  double crash_prob = 0.0;
  int crash_min_epochs = 1;
  int crash_max_epochs = 3;
  // Per-epoch probability that a client is a straggler, and the multiplier
  // applied to its compute and transfer times while it is one.
  double straggler_prob = 0.0;
  double straggler_slowdown = 4.0;
  // Per-delivery probability that the payload arrives corrupted (detected
  // by the receiver's checksum; see nn/serialize).
  double corruption_prob = 0.0;
  // Retry policy: up to `max_retries` re-attempts after the first failure,
  // with exponential backoff backoff_base_s * 2^attempt between attempts.
  int max_retries = 2;
  double backoff_base_s = 0.5;
  // A transfer (including retries and backoff) that would exceed this
  // deadline is abandoned with kDeadlineExceeded. Infinity = no deadline.
  double transfer_deadline_s = std::numeric_limits<double>::infinity();
  // Aggregation-round straggler deadline: uploads arriving at the server
  // later than this are dropped from the round (the server aggregates
  // whatever arrived in time). Infinity = wait for everyone.
  double upload_deadline_s = std::numeric_limits<double>::infinity();
  // Failed C2C migrations are re-routed through the parameter server
  // (charged as two C2S hops) before giving up.
  bool server_fallback = true;
  // Byzantine clients: `attack_fraction` of the fleet (rounded, sampled
  // once from the injector's attack stream, persistent for the whole run)
  // applies `attack_mode` to its model after every local update.
  // `attack_scale` is the noise stddev / scale multiplier.
  AttackMode attack_mode = AttackMode::kNone;
  double attack_fraction = 0.0;
  double attack_scale = 8.0;
  // Infrastructure chaos schedule (partitions / outages / churn).
  ChaosConfig chaos;
  uint64_t seed = 97;

  bool attacks_enabled() const {
    return attack_mode != AttackMode::kNone && attack_fraction > 0.0;
  }

  // True when any fault mechanism can fire.
  bool enabled() const {
    return link_failure_prob > 0.0 || bandwidth_jitter > 0.0 ||
           crash_prob > 0.0 || straggler_prob > 0.0 || corruption_prob > 0.0 ||
           attacks_enabled() || chaos.enabled();
  }
};

// Aggregate counters surfaced into RunResult / bench CSVs. All increments
// happen inside the injector or the fault-aware callers in fl/.
struct FaultCounters {
  int64_t attempts = 0;           // transfer attempts (incl. retries)
  int64_t failures = 0;           // attempts that failed in flight
  int64_t retries = 0;            // re-attempts after an in-flight failure
  int64_t deadline_aborts = 0;    // transfers abandoned at the deadline
  int64_t aborted_transfers = 0;  // transfers that gave up after retries
  int64_t fallbacks = 0;          // C2C moves re-routed via the server
  int64_t corrupted = 0;          // deliveries flagged as corrupted
  int64_t corrupt_rejected = 0;   // payloads rejected by checksum
  int64_t dropped_stragglers = 0; // uploads past the aggregation deadline
  int64_t crash_epochs = 0;       // client-epochs spent crashed
  int64_t crashes = 0;            // crash events
  int64_t partitioned_transfers = 0;  // refused at a sealed LAN boundary
  int64_t outage_transfers = 0;       // refused during a server outage
};

struct TransferResult {
  util::Status status;   // OK on delivery (possibly corrupted)
  double seconds = 0.0;  // simulated time incl. failed attempts and backoff
  int64_t bytes = 0;     // traffic charged incl. failed attempts
  int attempts = 0;
  bool corrupted = false;  // delivered, but the payload failed in flight
};

class FaultInjector {
 public:
  // Default: disabled, a strict no-op on every path.
  FaultInjector() : FaultInjector(FaultConfig{}) {}
  explicit FaultInjector(const FaultConfig& config);

  bool enabled() const { return config_.enabled(); }
  const FaultConfig& config() const { return config_; }

  // Rolls per-epoch client state: crashed clients count down their outage
  // window, healthy clients may crash, stragglers are re-sampled.
  void BeginEpoch(int num_clients);
  bool IsCrashed(int client) const;
  // 1.0 for healthy clients, straggler_slowdown for stragglers. The server
  // (kServerId) never straggles.
  double SlowdownFactor(int client) const;

  // True when `client` belongs to the persistent Byzantine set. The set is
  // sampled on the first BeginEpoch (round(attack_fraction * K) distinct
  // clients) from the dedicated attack stream, so enabling attacks leaves
  // the link/crash/straggler trajectory untouched.
  bool IsAttacker(int client) const;
  int num_attackers() const;
  // Stream the fl layer draws attack noise / corruption indices from;
  // serialized with the injector so a resumed run replays the same attack.
  util::Rng* attack_rng() { return &attack_rng_; }

  // Chaos schedule queries. `epoch` is the 1-based BeginEpoch tick; the
  // current tick is `epoch()`. All three are pure — no RNG is drawn.
  int epoch() const { return epoch_; }
  bool LanSealed(int lan, int epoch) const;
  bool ServerDown(int epoch) const;
  // Number of distinct LANs sealed at `epoch` (mirrored as a gauge).
  int ActivePartitions(int epoch) const;
  // Fleet churn membership: true when `client` is out of the fleet for
  // `round`. Pure hash of (chaos.churn_seed, client, round).
  bool ChurnedOut(int client, int64_t round) const;

  // One fault-aware transfer over (src, dst); either endpoint may be
  // kServerId. Every attempt is charged to `traffic` (if non-null); the
  // returned seconds include failed attempts and backoff. A transfer
  // refused by the chaos schedule (sealed LAN boundary or server outage)
  // fails fast: one connection-setup latency, zero bytes, no RNG drawn.
  TransferResult Transfer(int src, int dst, int64_t bytes,
                          const Topology& topology,
                          TrafficAccountant* traffic);

  const FaultCounters& counters() const { return counters_; }

  // Fault outcomes detected by the *receiver* (checksum rejects, uploads
  // past the aggregation deadline, server fallbacks) are reported back here
  // so every counter mutation flows through the injector — the struct stays
  // the per-run snapshot while the obs registry mirrors each increment as a
  // live `net/fault_*` metric.
  void CountCorruptRejected();
  void CountDroppedStraggler();
  void CountFallback();

  // Full injector state (RNG stream, counters, outage/straggler rolls) so a
  // resumed run replays the same fault trajectory bit-identically.
  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

 private:
  double AttemptSeconds(int src, int dst, int64_t bytes,
                        const Topology& topology);

  // SNAPSHOT-SKIP(configuration, supplied identically on resume)
  FaultConfig config_;
  util::Rng rng_;
  util::Rng attack_rng_;
  FaultCounters counters_;
  std::vector<int> down_epochs_;     // remaining outage per client
  std::vector<bool> straggler_;
  std::vector<bool> attacker_;       // persistent Byzantine set
  bool attackers_sampled_ = false;
  int epoch_ = 0;  // BeginEpoch ticks; drives the chaos schedule
};

}  // namespace fedmigr::net

#endif  // FEDMIGR_NET_FAULT_H_
