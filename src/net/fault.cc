#include "net/fault.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "util/logging.h"

namespace fedmigr::net {

namespace {

// Live registry mirrors of FaultCounters, one counter per field. The struct
// stays the serialized per-run source (SaveState/LoadState); the registry
// accumulates process-wide, so every mutation goes through Bump to keep the
// two views in lockstep.
struct FaultMetrics {
  obs::Counter* attempts;
  obs::Counter* failures;
  obs::Counter* retries;
  obs::Counter* deadline_aborts;
  obs::Counter* aborted_transfers;
  obs::Counter* fallbacks;
  obs::Counter* corrupted;
  obs::Counter* corrupt_rejected;
  obs::Counter* dropped_stragglers;
  obs::Counter* crash_epochs;
  obs::Counter* crashes;
  obs::Counter* partitioned_transfers;
  obs::Counter* outage_transfers;

  static const FaultMetrics& Get() {
    static const FaultMetrics* metrics = [] {
      obs::Registry& registry = obs::Registry::Default();
      return new FaultMetrics{
          registry.GetCounter("net/fault_attempts"),
          registry.GetCounter("net/fault_failures"),
          registry.GetCounter("net/fault_retries"),
          registry.GetCounter("net/fault_deadline_aborts"),
          registry.GetCounter("net/fault_aborted_transfers"),
          registry.GetCounter("net/fault_fallbacks"),
          registry.GetCounter("net/fault_corrupted"),
          registry.GetCounter("net/fault_corrupt_rejected"),
          registry.GetCounter("net/fault_dropped_stragglers"),
          registry.GetCounter("net/fault_crash_epochs"),
          registry.GetCounter("net/fault_crashes"),
          registry.GetCounter("net/fault_partitioned_transfers"),
          registry.GetCounter("net/fault_outage_transfers"),
      };
    }();
    return *metrics;
  }
};

// Epoch window test shared by the explicit schedules and the recurring
// generators.
bool InWindow(int epoch, int start_epoch, int duration_epochs) {
  return epoch >= start_epoch && epoch < start_epoch + duration_epochs;
}

bool InRecurringWindow(int epoch, int period, int phase, int duration) {
  if (period <= 0 || epoch < phase) return false;
  return (epoch - phase) % period < duration;
}

// The registry lookup stays inside the enabled() branch so a disabled (or
// compiled-out) build never touches the metrics statics.
void Bump(int64_t* slot, obs::Counter* FaultMetrics::*member) {
  ++*slot;
  if (obs::Telemetry::enabled()) (FaultMetrics::Get().*member)->Increment();
}

}  // namespace

bool ParseAttackMode(const std::string& name, AttackMode* mode) {
  if (name == "none") *mode = AttackMode::kNone;
  else if (name == "sign-flip") *mode = AttackMode::kSignFlip;
  else if (name == "gaussian") *mode = AttackMode::kGaussianNoise;
  else if (name == "scale") *mode = AttackMode::kScaledModel;
  else if (name == "silent") *mode = AttackMode::kSilentCorruption;
  else if (name == "nan") *mode = AttackMode::kNanInjection;
  else return false;
  return true;
}

const char* AttackModeName(AttackMode mode) {
  switch (mode) {
    case AttackMode::kNone: return "none";
    case AttackMode::kSignFlip: return "sign-flip";
    case AttackMode::kGaussianNoise: return "gaussian";
    case AttackMode::kScaledModel: return "scale";
    case AttackMode::kSilentCorruption: return "silent";
    case AttackMode::kNanInjection: return "nan";
  }
  return "none";
}

FaultInjector::FaultInjector(const FaultConfig& config)
    : config_(config),
      rng_(config.seed),
      attack_rng_(config.seed * 7919ULL + 13ULL) {
  FEDMIGR_CHECK_GE(config_.link_failure_prob, 0.0);
  FEDMIGR_CHECK_LT(config_.link_failure_prob, 1.0);
  FEDMIGR_CHECK_GE(config_.bandwidth_jitter, 0.0);
  FEDMIGR_CHECK_GE(config_.crash_prob, 0.0);
  FEDMIGR_CHECK_LT(config_.crash_prob, 1.0);
  FEDMIGR_CHECK_GE(config_.crash_min_epochs, 1);
  FEDMIGR_CHECK_GE(config_.crash_max_epochs, config_.crash_min_epochs);
  FEDMIGR_CHECK_GE(config_.straggler_prob, 0.0);
  FEDMIGR_CHECK_LE(config_.straggler_prob, 1.0);
  FEDMIGR_CHECK_GE(config_.straggler_slowdown, 1.0);
  FEDMIGR_CHECK_GE(config_.corruption_prob, 0.0);
  FEDMIGR_CHECK_LE(config_.corruption_prob, 1.0);
  FEDMIGR_CHECK_GE(config_.max_retries, 0);
  FEDMIGR_CHECK_GE(config_.backoff_base_s, 0.0);
  FEDMIGR_CHECK_GT(config_.transfer_deadline_s, 0.0);
  FEDMIGR_CHECK_GT(config_.upload_deadline_s, 0.0);
  FEDMIGR_CHECK_GE(config_.attack_fraction, 0.0);
  FEDMIGR_CHECK_LE(config_.attack_fraction, 1.0);
  for (const PartitionWindow& w : config_.chaos.partitions) {
    FEDMIGR_CHECK_GE(w.lan, 0);
    FEDMIGR_CHECK_GE(w.start_epoch, 1);
    FEDMIGR_CHECK_GE(w.duration_epochs, 1);
  }
  for (const OutageWindow& w : config_.chaos.outages) {
    FEDMIGR_CHECK_GE(w.start_epoch, 1);
    FEDMIGR_CHECK_GE(w.duration_epochs, 1);
  }
  FEDMIGR_CHECK_GE(config_.chaos.partition_period, 0);
  FEDMIGR_CHECK_GE(config_.chaos.outage_period, 0);
  FEDMIGR_CHECK_GE(config_.chaos.churn_rate, 0.0);
  FEDMIGR_CHECK_LT(config_.chaos.churn_rate, 1.0);
}

bool FaultInjector::LanSealed(int lan, int epoch) const {
  if (lan < 0 || epoch <= 0) return false;  // the server lives in no LAN
  const ChaosConfig& chaos = config_.chaos;
  for (const PartitionWindow& w : chaos.partitions) {
    if (w.lan == lan && InWindow(epoch, w.start_epoch, w.duration_epochs)) {
      return true;
    }
  }
  return lan == chaos.partition_lan &&
         InRecurringWindow(epoch, chaos.partition_period, chaos.partition_phase,
                           chaos.partition_epochs);
}

bool FaultInjector::ServerDown(int epoch) const {
  if (epoch <= 0) return false;
  const ChaosConfig& chaos = config_.chaos;
  for (const OutageWindow& w : chaos.outages) {
    if (InWindow(epoch, w.start_epoch, w.duration_epochs)) return true;
  }
  return InRecurringWindow(epoch, chaos.outage_period, chaos.outage_phase,
                           chaos.outage_epochs);
}

int FaultInjector::ActivePartitions(int epoch) const {
  std::set<int> sealed;
  for (const PartitionWindow& w : config_.chaos.partitions) {
    if (InWindow(epoch, w.start_epoch, w.duration_epochs)) sealed.insert(w.lan);
  }
  if (InRecurringWindow(epoch, config_.chaos.partition_period,
                        config_.chaos.partition_phase,
                        config_.chaos.partition_epochs)) {
    sealed.insert(config_.chaos.partition_lan);
  }
  return static_cast<int>(sealed.size());
}

bool FaultInjector::ChurnedOut(int client, int64_t round) const {
  const double rate = config_.chaos.churn_rate;
  if (rate <= 0.0 || client < 0) return false;
  // splitmix64-style mix of (seed, round, client): pure, so membership is
  // identical across resumes and independent of every RNG stream.
  uint64_t z = config_.chaos.churn_seed +
               0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(round) + 1) +
               0xbf58476d1ce4e5b9ULL * (static_cast<uint64_t>(client) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < rate;
}

void FaultInjector::BeginEpoch(int num_clients) {
  if (!enabled()) return;
  ++epoch_;
  if (config_.chaos.enabled() && obs::Telemetry::enabled()) {
    static obs::Gauge* partitions_gauge =
        obs::Registry::Default().GetGauge("net/chaos_partitions_active");
    static obs::Gauge* server_down_gauge =
        obs::Registry::Default().GetGauge("net/chaos_server_down");
    partitions_gauge->Set(ActivePartitions(epoch_));
    server_down_gauge->Set(ServerDown(epoch_) ? 1 : 0);
  }
  if (config_.attacks_enabled() && !attackers_sampled_) {
    // One-time persistent Byzantine set: round(f * K) distinct clients.
    attacker_.assign(static_cast<size_t>(num_clients), false);
    const int count = std::min(
        num_clients,
        static_cast<int>(config_.attack_fraction * num_clients + 0.5));
    for (int idx : attack_rng_.SampleWithoutReplacement(num_clients, count)) {
      attacker_[static_cast<size_t>(idx)] = true;
    }
    attackers_sampled_ = true;
  }
  down_epochs_.resize(static_cast<size_t>(num_clients), 0);
  straggler_.resize(static_cast<size_t>(num_clients), false);
  // Chaos-only configs draw no per-client randomness: skipping the roll
  // loop keeps the RNG stream (and so the whole trajectory) byte-identical
  // to a run without the chaos schedule.
  if (config_.crash_prob <= 0.0 && config_.straggler_prob <= 0.0) return;
  for (int i = 0; i < num_clients; ++i) {
    int& down = down_epochs_[static_cast<size_t>(i)];
    if (down > 0) --down;
    if (down == 0 && config_.crash_prob > 0.0 &&
        rng_.Bernoulli(config_.crash_prob)) {
      const int span = config_.crash_max_epochs - config_.crash_min_epochs;
      down = config_.crash_min_epochs +
             (span > 0 ? rng_.UniformInt(span + 1) : 0);
      Bump(&counters_.crashes, &FaultMetrics::crashes);
    }
    if (down > 0) Bump(&counters_.crash_epochs, &FaultMetrics::crash_epochs);
    straggler_[static_cast<size_t>(i)] =
        config_.straggler_prob > 0.0 && rng_.Bernoulli(config_.straggler_prob);
  }
}

bool FaultInjector::IsCrashed(int client) const {
  if (client < 0 || client >= static_cast<int>(down_epochs_.size())) {
    return false;  // the server, or a client never rolled
  }
  return down_epochs_[static_cast<size_t>(client)] > 0;
}

bool FaultInjector::IsAttacker(int client) const {
  if (client < 0 || client >= static_cast<int>(attacker_.size())) return false;
  return attacker_[static_cast<size_t>(client)];
}

int FaultInjector::num_attackers() const {
  int count = 0;
  for (bool a : attacker_) count += a ? 1 : 0;
  return count;
}

double FaultInjector::SlowdownFactor(int client) const {
  if (client < 0 || client >= static_cast<int>(straggler_.size())) return 1.0;
  return straggler_[static_cast<size_t>(client)] ? config_.straggler_slowdown
                                                 : 1.0;
}

double FaultInjector::AttemptSeconds(int src, int dst, int64_t bytes,
                                     const Topology& topology) {
  double seconds = topology.TransferSeconds(src, dst, bytes);
  seconds *= std::max(SlowdownFactor(src), SlowdownFactor(dst));
  if (config_.bandwidth_jitter > 0.0) {
    seconds *= 1.0 + rng_.Uniform(0.0, config_.bandwidth_jitter);
  }
  return seconds;
}

void FaultInjector::SaveState(util::ByteWriter* writer) const {
  util::SaveRngState(rng_, writer);
  writer->WriteI64(counters_.attempts);
  writer->WriteI64(counters_.failures);
  writer->WriteI64(counters_.retries);
  writer->WriteI64(counters_.deadline_aborts);
  writer->WriteI64(counters_.aborted_transfers);
  writer->WriteI64(counters_.fallbacks);
  writer->WriteI64(counters_.corrupted);
  writer->WriteI64(counters_.corrupt_rejected);
  writer->WriteI64(counters_.dropped_stragglers);
  writer->WriteI64(counters_.crash_epochs);
  writer->WriteI64(counters_.crashes);
  writer->WriteI32Vector(down_epochs_);
  writer->WriteBoolVector(straggler_);
  util::SaveRngState(attack_rng_, writer);
  writer->WriteBoolVector(attacker_);
  writer->WriteBool(attackers_sampled_);
  writer->WriteI64(counters_.partitioned_transfers);
  writer->WriteI64(counters_.outage_transfers);
  writer->WriteI32(epoch_);
}

util::Status FaultInjector::LoadState(util::ByteReader* reader) {
  FEDMIGR_RETURN_IF_ERROR(util::LoadRngState(reader, &rng_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.attempts));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.failures));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.retries));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.deadline_aborts));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.aborted_transfers));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.fallbacks));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.corrupted));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.corrupt_rejected));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.dropped_stragglers));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.crash_epochs));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.crashes));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32Vector(&down_epochs_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBoolVector(&straggler_));
  FEDMIGR_RETURN_IF_ERROR(util::LoadRngState(reader, &attack_rng_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBoolVector(&attacker_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&attackers_sampled_));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.partitioned_transfers));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI64(&counters_.outage_transfers));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadI32(&epoch_));
  if (down_epochs_.size() != straggler_.size()) {
    return util::Status::InvalidArgument(
        "fault injector client vectors out of sync");
  }
  return util::Status::Ok();
}

void FaultInjector::CountCorruptRejected() {
  Bump(&counters_.corrupt_rejected, &FaultMetrics::corrupt_rejected);
}

void FaultInjector::CountDroppedStraggler() {
  Bump(&counters_.dropped_stragglers, &FaultMetrics::dropped_stragglers);
}

void FaultInjector::CountFallback() {
  Bump(&counters_.fallbacks, &FaultMetrics::fallbacks);
}

TransferResult FaultInjector::Transfer(int src, int dst, int64_t bytes,
                                       const Topology& topology,
                                       TrafficAccountant* traffic) {
  TransferResult result;
  if (!enabled()) {
    // Strict no-op path: identical accounting to the direct transfer, no
    // RNG draws, no counter churn.
    result.seconds = topology.TransferSeconds(src, dst, bytes);
    result.bytes = bytes;
    result.attempts = 1;
    if (traffic != nullptr) traffic->Record(src, dst, bytes);
    return result;
  }

  // Chaos schedule refusals come first and fail fast: the sender burns one
  // connection-setup latency, pushes no payload, and — deliberately — draws
  // no RNG, so a partition window leaves the link-fault stream untouched.
  if (config_.chaos.has_outages() && ServerDown(epoch_) &&
      (src == kServerId || dst == kServerId)) {
    Bump(&counters_.outage_transfers, &FaultMetrics::outage_transfers);
    result.seconds = topology.config().link_latency_s;
    result.status = util::Status::Unavailable(
        "transfer " + std::to_string(src) + "->" + std::to_string(dst) +
        " refused: edge server down");
    return result;
  }
  if (config_.chaos.has_partitions()) {
    const int src_lan = src == kServerId ? -1 : topology.lan_of(src);
    const int dst_lan = dst == kServerId ? -1 : topology.lan_of(dst);
    if (src_lan != dst_lan &&
        (LanSealed(src_lan, epoch_) || LanSealed(dst_lan, epoch_))) {
      Bump(&counters_.partitioned_transfers,
           &FaultMetrics::partitioned_transfers);
      result.seconds = topology.config().link_latency_s;
      result.status = util::Status::Unavailable(
          "transfer " + std::to_string(src) + "->" + std::to_string(dst) +
          " refused: LAN boundary sealed by partition");
      return result;
    }
  }

  const int max_attempts = 1 + config_.max_retries;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    const double attempt_seconds = AttemptSeconds(src, dst, bytes, topology);
    if (result.seconds + attempt_seconds > config_.transfer_deadline_s) {
      // Not enough deadline left for another attempt: the sender waits out
      // the deadline and gives up. Bytes already spent stay charged.
      Bump(&counters_.deadline_aborts, &FaultMetrics::deadline_aborts);
      Bump(&counters_.aborted_transfers, &FaultMetrics::aborted_transfers);
      result.seconds = config_.transfer_deadline_s;
      result.status = util::Status::DeadlineExceeded(
          "transfer " + std::to_string(src) + "->" + std::to_string(dst) +
          " abandoned at deadline");
      return result;
    }

    ++result.attempts;
    Bump(&counters_.attempts, &FaultMetrics::attempts);
    result.seconds += attempt_seconds;
    // A failed attempt still pushed the full payload into the network: the
    // bytes are spent whether or not the far end got them.
    result.bytes += bytes;
    if (traffic != nullptr) traffic->Record(src, dst, bytes);

    const bool failed = config_.link_failure_prob > 0.0 &&
                        rng_.Bernoulli(config_.link_failure_prob);
    if (!failed) {
      if (config_.corruption_prob > 0.0 &&
          rng_.Bernoulli(config_.corruption_prob)) {
        result.corrupted = true;
        Bump(&counters_.corrupted, &FaultMetrics::corrupted);
      }
      return result;
    }
    Bump(&counters_.failures, &FaultMetrics::failures);
    if (attempt + 1 < max_attempts) {
      Bump(&counters_.retries, &FaultMetrics::retries);
      result.seconds += config_.backoff_base_s * static_cast<double>(1 << attempt);
    }
  }
  Bump(&counters_.aborted_transfers, &FaultMetrics::aborted_transfers);
  result.status = util::Status::Unavailable(
      "transfer " + std::to_string(src) + "->" + std::to_string(dst) +
      " failed after " + std::to_string(max_attempts) + " attempts");
  return result;
}

}  // namespace fedmigr::net
