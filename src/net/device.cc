#include "net/device.h"

#include <algorithm>

#include "util/logging.h"

namespace fedmigr::net {

DeviceProfile MakeProfile(DeviceType type) {
  DeviceProfile profile;
  profile.type = type;
  switch (type) {
    case DeviceType::kJetsonTx2:
      profile.samples_per_second = 150.0;
      break;
    case DeviceType::kXavierNx:
      profile.samples_per_second = 280.0;
      break;
    case DeviceType::kWorkstation:
      profile.samples_per_second = 2000.0;
      break;
  }
  return profile;
}

double ComputeSeconds(const DeviceProfile& device, int64_t num_samples,
                      int64_t model_params, int64_t reference_params) {
  FEDMIGR_CHECK_GT(device.samples_per_second, 0.0);
  FEDMIGR_CHECK_GT(reference_params, 0);
  const double cost_factor = std::max(
      0.1, static_cast<double>(model_params) / reference_params);
  return static_cast<double>(num_samples) * cost_factor /
         device.samples_per_second;
}

std::vector<DeviceProfile> MakeTestbedFleet(int num_clients) {
  std::vector<DeviceProfile> fleet;
  fleet.reserve(num_clients);
  for (int i = 0; i < num_clients; ++i) {
    fleet.push_back(MakeProfile(i % 2 == 0 ? DeviceType::kJetsonTx2
                                           : DeviceType::kXavierNx));
  }
  return fleet;
}

std::vector<DeviceProfile> MakeUniformFleet(int num_clients,
                                            double samples_per_second) {
  std::vector<DeviceProfile> fleet(static_cast<size_t>(num_clients));
  for (auto& device : fleet) device.samples_per_second = samples_per_second;
  return fleet;
}

}  // namespace fedmigr::net
