// Resource budgets B_c (computation) and B_b (bandwidth) from the FLMM
// formulation (Eq. 16), plus the wall-clock budget used by Fig. 9's
// time-constrained runs. Budgets are consumed by the simulation clock /
// traffic accountant and queried by the reward function (Eq. 17-18).

#ifndef FEDMIGR_NET_BUDGET_H_
#define FEDMIGR_NET_BUDGET_H_

#include <cstdint>
#include <limits>

#include "util/serial.h"

namespace fedmigr::net {

class Budget {
 public:
  // Unlimited budgets by default.
  Budget() = default;
  Budget(double compute_budget, double bandwidth_budget_bytes,
         double time_budget_s = std::numeric_limits<double>::infinity());

  void ConsumeCompute(double units);
  void ConsumeBandwidth(double bytes);
  void ConsumeTime(double seconds);

  double compute_budget() const { return compute_budget_; }
  double bandwidth_budget() const { return bandwidth_budget_; }
  double time_budget() const { return time_budget_; }

  double compute_used() const { return compute_used_; }
  double bandwidth_used() const { return bandwidth_used_; }
  double time_used() const { return time_used_; }

  double compute_remaining() const { return compute_budget_ - compute_used_; }
  double bandwidth_remaining() const {
    return bandwidth_budget_ - bandwidth_used_;
  }
  double time_remaining() const { return time_budget_ - time_used_; }

  // min G_T <= 0 in the paper's termination test.
  bool Exhausted() const {
    return compute_remaining() <= 0.0 || bandwidth_remaining() <= 0.0 ||
           time_remaining() <= 0.0;
  }

  // Fraction of a budget already consumed, in [0, 1]; 0 for infinite
  // budgets. Feeds the DRL state featurizer.
  double ComputeUsedFraction() const;
  double BandwidthUsedFraction() const;

  // Consumed-amount snapshot state (the limits come from configuration).
  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

 private:
  // SNAPSHOT-SKIP(configured limits; only consumed amounts are state)
  double compute_budget_ = std::numeric_limits<double>::infinity();
  // SNAPSHOT-SKIP(configured limits; only consumed amounts are state)
  double bandwidth_budget_ = std::numeric_limits<double>::infinity();
  // SNAPSHOT-SKIP(configured limits; only consumed amounts are state)
  double time_budget_ = std::numeric_limits<double>::infinity();
  double compute_used_ = 0.0;
  double bandwidth_used_ = 0.0;
  double time_used_ = 0.0;
};

}  // namespace fedmigr::net

#endif  // FEDMIGR_NET_BUDGET_H_
