// Traffic accounting: every simulated byte that crosses a link is recorded
// here, split into C2S (global, WAN) and C2C (migration) traffic, with
// per-link transfer counts for the link-selection-frequency analysis of
// Fig. 8.

#ifndef FEDMIGR_NET_TRAFFIC_H_
#define FEDMIGR_NET_TRAFFIC_H_

#include <cstdint>
#include <map>
#include <utility>

#include "util/serial.h"

namespace fedmigr::net {

class TrafficAccountant {
 public:
  // Records a transfer of `bytes` from `src` to `dst` (either endpoint may
  // be kServerId).
  void Record(int src, int dst, int64_t bytes);

  int64_t total_bytes() const { return c2s_bytes_ + c2c_bytes_; }
  int64_t c2s_bytes() const { return c2s_bytes_; }
  int64_t c2c_bytes() const { return c2c_bytes_; }
  // Directional split of the C2S total: uploads terminate at the server
  // (dst == kServerId), downloads originate there. The split keeps
  // dropped-straggler uploads — charged but never aggregated — from being
  // conflated with distribution traffic in per-round bench accounting.
  int64_t c2s_up_bytes() const { return c2s_up_bytes_; }
  int64_t c2s_down_bytes() const { return c2s_down_bytes_; }
  int64_t num_transfers() const { return num_transfers_; }

  double total_gb() const;
  double c2s_gb() const;
  double c2c_gb() const;
  double c2s_up_gb() const;
  double c2s_down_gb() const;

  // Transfer count over the undirected client pair {a, b}; 0 if never used.
  int64_t LinkCount(int a, int b) const;
  int64_t LinkBytes(int a, int b) const;

  void Reset();

  // Full accounting state, including the per-link maps behind the Fig. 8
  // analysis, for the run-snapshot subsystem.
  void SaveState(util::ByteWriter* writer) const;
  util::Status LoadState(util::ByteReader* reader);

 private:
  static std::pair<int, int> Key(int a, int b);

  int64_t c2s_bytes_ = 0;
  int64_t c2c_bytes_ = 0;
  int64_t c2s_up_bytes_ = 0;
  int64_t c2s_down_bytes_ = 0;
  int64_t num_transfers_ = 0;
  std::map<std::pair<int, int>, int64_t> link_counts_;
  std::map<std::pair<int, int>, int64_t> link_bytes_;
};

}  // namespace fedmigr::net

#endif  // FEDMIGR_NET_TRAFFIC_H_
