// Edge-network topology: clients grouped into LANs, one parameter server
// reachable over the WAN. Link bandwidths drive both traffic accounting and
// completion-time simulation.
//
// The model follows Section IV-C/IV-D of the paper: communication within a
// LAN is cheap, C2C across LANs is moderate, client-to-server (C2S) over the
// WAN is the scarce resource. Per-link multipliers allow heterogeneous C2C
// speeds (fast/moderate/slow links of Fig. 8).

#ifndef FEDMIGR_NET_TOPOLOGY_H_
#define FEDMIGR_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace fedmigr::net {

// Node id of the parameter server in (src, dst) pairs.
inline constexpr int kServerId = -1;

struct TopologyConfig {
  // LAN membership: lan_of[k] is the LAN index of client k. Size K.
  std::vector<int> lan_of;
  double intra_lan_mbps = 300.0;   // C2C within a LAN
  double cross_lan_mbps = 60.0;    // C2C across LANs
  double wan_mbps = 20.0;          // C2S (the paper's ~50 Mbps shared WAN)
  double link_latency_s = 0.01;    // per-transfer fixed latency
};

// Evenly splits `num_clients` across `num_lans` LANs (the paper's 3 LANs of
// sizes 4/3/3 for C10, 5 LANs x 4 clients for C100).
std::vector<int> EvenLanAssignment(int num_clients, int num_lans);

class Topology {
 public:
  // Default: a trivial single-client, single-LAN network. Exists so value
  // members can be default-constructed and later assigned.
  Topology() : Topology(TopologyConfig{.lan_of = {0}}) {}
  explicit Topology(TopologyConfig config);

  int num_clients() const { return static_cast<int>(config_.lan_of.size()); }
  int num_lans() const { return num_lans_; }
  int lan_of(int client) const;
  bool SameLan(int a, int b) const { return lan_of(a) == lan_of(b); }

  // Effective bandwidth of the (src, dst) link in Mbps. Either endpoint may
  // be kServerId. src == dst yields +inf semantics (no transfer); callers
  // should not ask for it — CHECK-fails.
  double BandwidthMbps(int src, int dst) const;

  // Seconds to move `bytes` over the (src, dst) link, incl. fixed latency.
  double TransferSeconds(int src, int dst, int64_t bytes) const;

  // Scales the bandwidth of one C2C link pair (applied symmetrically).
  // Multiplier < 1 slows the link (Fig. 8's "slow" links).
  void SetLinkMultiplier(int a, int b, double multiplier);
  double LinkMultiplier(int a, int b) const;

  const TopologyConfig& config() const { return config_; }

 private:
  int64_t LinkIndex(int a, int b) const;

  TopologyConfig config_;
  int num_lans_ = 0;
  // Dense K x K multiplier table for C2C links; empty means identity. Only
  // allocated on the first SetLinkMultiplier call — a million-client fleet
  // with uniform links must not pay K^2 doubles.
  std::vector<double> multipliers_;
};

// Convenience: the paper's C10 simulation topology — 10 clients in LANs
// {0,1,2,3}, {4,5,6}, {7,8,9}.
Topology MakeC10SimTopology();
// The paper's C100 simulation topology — 20 clients in 5 LANs of 4.
Topology MakeC100SimTopology();

}  // namespace fedmigr::net

#endif  // FEDMIGR_NET_TOPOLOGY_H_
