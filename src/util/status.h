// Lightweight error-handling primitives used across the FedMigr codebase.
//
// We follow the RocksDB/Arrow idiom: fallible operations return a `Status`
// (or a `Result<T>` when they also produce a value) instead of throwing.
// Exceptions are reserved for programming errors surfaced via CHECK-style
// assertions in logging.h.

#ifndef FEDMIGR_UTIL_STATUS_H_
#define FEDMIGR_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace fedmigr::util {

// Error categories. Kept deliberately small; most call sites only care about
// ok() vs. not-ok and the human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kResourceExhausted,
  kInternal,
  kUnavailable,        // transient failure (e.g. a link dropped mid-transfer)
  kDeadlineExceeded,   // operation abandoned at its deadline
  kDataLoss,           // payload corrupted (checksum mismatch)
};

// Value-semantic status word. Copyable and cheap (one enum + one string).
// [[nodiscard]] at the class level: every function returning a Status (the
// ByteReader helpers, Load/Deserialize APIs, file I/O) makes the caller
// either handle the error or cast the drop to (void) explicitly — enforced
// tree-wide with -Werror=unused-result and the fedmigr_lint
// `discarded-status` rule.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> carries either a value or an error Status. Modeled after
// absl::StatusOr but minimal: no implicit conversions beyond the two
// constructors below.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : status_(std::move(status)) {}   // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace fedmigr::util

// Propagates a non-OK Status from an expression, RocksDB-style.
#define FEDMIGR_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::fedmigr::util::Status _status = (expr);        \
    if (!_status.ok()) return _status;               \
  } while (0)

#endif  // FEDMIGR_UTIL_STATUS_H_
