#include "util/file.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace fedmigr::util {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " failed for " + path + ": " +
                          std::strerror(errno));
}

// Best-effort fsync of a directory so a just-published rename is durable.
void SyncDirectory(const std::string& path) {
  const int fd = ::open(path.empty() ? "." : path.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return ErrnoStatus("open", tmp);
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("rename", path);
  }
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  SyncDirectory(dir);
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::Internal("cannot determine size: " + path);
  }
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in || in.gcount() != size) {
    return Status::Internal("read failed: " + path);
  }
  return bytes;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::Internal("remove failed for " + path + ": " +
                            ec.message());
  }
  return Status::Ok();
}

Status MakeDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::Internal("mkdir failed for " + path + ": " + ec.message());
  }
  return Status::Ok();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot list " + dir + ": " + ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  return names;
}

}  // namespace fedmigr::util
