#include "util/file.h"

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

#include <fcntl.h>
#include <unistd.h>

namespace fedmigr::util {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::Internal(op + " failed for " + path + ": " +
                          std::strerror(errno));
}

// Best-effort fsync of a directory so a just-published rename is durable.
void SyncDirectory(const std::string& path) {
  const int fd = ::open(path.empty() ? "." : path.c_str(),
                        O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return ErrnoStatus("open", tmp);
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      return ErrnoStatus("write", tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return ErrnoStatus("fsync", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("close", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return ErrnoStatus("rename", path);
  }
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  SyncDirectory(dir);
  return Status::Ok();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    return Status::Internal("cannot determine size: " + path);
  }
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in || in.gcount() != size) {
    return Status::Internal("read failed: " + path);
  }
  return bytes;
}

bool FileExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) {
    return Status::Internal("remove failed for " + path + ": " +
                            ec.message());
  }
  return Status::Ok();
}

Status MakeDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::Internal("mkdir failed for " + path + ": " + ec.message());
  }
  return Status::Ok();
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), size_(other.size_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.size_ = 0;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = other.fd_;
    size_ = other.size_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.size_ = 0;
  }
  return *this;
}

Status AppendFile::Open(const std::string& path) {
  if (fd_ >= 0) {
    return Status::Internal("AppendFile already open: " + path_);
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    return ErrnoStatus("open", path);
  }
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) {
    ::close(fd);
    return ErrnoStatus("lseek", path);
  }
  fd_ = fd;
  size_ = static_cast<uint64_t>(end);
  path_ = path;
  return Status::Ok();
}

Status AppendFile::Append(const void* data, size_t size) {
  if (fd_ < 0) {
    return Status::Internal("AppendFile not open");
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd_, bytes + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoStatus("write", path_);
    }
    written += static_cast<size_t>(n);
  }
  size_ += written;
  return Status::Ok();
}

Status AppendFile::Append(const std::vector<uint8_t>& data) {
  return Append(data.data(), data.size());
}

Status AppendFile::Truncate(uint64_t new_size) {
  if (fd_ < 0) {
    return Status::Internal("AppendFile not open");
  }
  if (new_size > size_) {
    return Status::InvalidArgument("Truncate would grow " + path_);
  }
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    return ErrnoStatus("ftruncate", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(new_size), SEEK_SET) < 0) {
    return ErrnoStatus("lseek", path_);
  }
  size_ = new_size;
  return Status::Ok();
}

Status AppendFile::Sync() {
  if (fd_ < 0) {
    return Status::Internal("AppendFile not open");
  }
  if (::fsync(fd_) != 0) {
    return ErrnoStatus("fsync", path_);
  }
  return Status::Ok();
}

Status AppendFile::Close() {
  if (fd_ < 0) {
    return Status::Ok();
  }
  const int fd = fd_;
  fd_ = -1;
  size_ = 0;
  if (::close(fd) != 0) {
    return ErrnoStatus("close", path_);
  }
  return Status::Ok();
}

Result<std::vector<std::string>> ListDirectory(const std::string& dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(dir, ec);
  if (ec) {
    return Status::NotFound("cannot list " + dir + ": " + ec.message());
  }
  std::vector<std::string> names;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) {
      names.push_back(entry.path().filename().string());
    }
  }
  return names;
}

}  // namespace fedmigr::util
