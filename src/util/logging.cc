#include "util/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace fedmigr::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};

// Serializes writes so interleaved worker threads produce whole lines.
std::mutex& OutputMutex() {
  static std::mutex* mutex = new std::mutex;
  return *mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

// Guarded by OutputMutex().
LogSink& SinkSlot() {
  static LogSink* sink = new LogSink;
  return *sink;
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  using Clock = std::chrono::system_clock;
  const auto now = Clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  // Strip directories from __FILE__ for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  char prefix[256];
  std::snprintf(prefix, sizeof(prefix), "[%s %lld.%03lld %s:%d] ",
                LevelTag(level), static_cast<long long>(ms / 1000),
                static_cast<long long>(ms % 1000), base, line);
  std::lock_guard<std::mutex> lock(OutputMutex());
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(level, prefix + msg);
  } else {
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
  }
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warning" || lower == "warn") {
    *out = LogLevel::kWarning;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(OutputMutex());
  SinkSlot() = std::move(sink);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    Emit(level_, file_, line_, stream_.str());
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << "CHECK failed at " << file << ":" << line << ": " << condition
          << " ";
}

FatalMessage::~FatalMessage() {
  std::lock_guard<std::mutex> lock(OutputMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal_logging
}  // namespace fedmigr::util
