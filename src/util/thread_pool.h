// Fixed-size thread pool used to train simulated clients in parallel.

#ifndef FEDMIGR_UTIL_THREAD_POOL_H_
#define FEDMIGR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedmigr::util {

// Work-queue thread pool. Tasks are void() closures; `Wait()` blocks until
// the queue drains and all workers are idle, which is the synchronization
// point between FL phases (all clients finish local updating before the
// server computes the migration policy).
//
// A task that throws does not kill its worker thread: the first exception
// is captured and rethrown from the next Wait() (and thus from
// ParallelFor); later exceptions from the same batch are dropped. A still
// pending exception at destruction time is logged, not rethrown. The
// captured exception is *transferred*, never shared: the worker moves its
// reference into `pending_error_` under the pool mutex and Wait() moves it
// back out, so the exception object is only ever touched by one thread at
// a time (the TSan-verified ownership handoff; see WorkerLoop).
//
// Nesting: ParallelFor / ParallelForRange called from inside any pool
// worker (this pool or another) run their body inline on the calling
// thread instead of dispatching. Dispatching from a worker of the same
// pool would deadlock (Wait() can never see the caller's own task retire),
// and dispatching from a worker of another pool would oversubscribe; both
// collapse to sequential execution with identical results.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  // Runs fn(begin, end) over the fixed chunking of [0, n) into grain-sized
  // ranges ([0,grain), [grain,2*grain), ...) and waits for completion. The
  // chunk boundaries depend only on n and grain — never on the number of
  // threads or on which thread claims which chunk — so a kernel whose
  // per-element results are a pure function of its (begin, end) chunk is
  // bit-identical at any thread count (the intra-op determinism contract;
  // see DESIGN.md).
  void ParallelForRange(int64_t n, int64_t grain,
                        const std::function<void(int64_t, int64_t)>& fn);

  // True when the calling thread is a worker of *any* ThreadPool.
  static bool InWorkerThread();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr pending_error_;
};

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_THREAD_POOL_H_
