// Fixed-size thread pool used to train simulated clients in parallel.

#ifndef FEDMIGR_UTIL_THREAD_POOL_H_
#define FEDMIGR_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fedmigr::util {

// Work-queue thread pool. Tasks are void() closures; `Wait()` blocks until
// the queue drains and all workers are idle, which is the synchronization
// point between FL phases (all clients finish local updating before the
// server computes the migration policy).
//
// A task that throws does not kill its worker thread: the first exception
// is captured and rethrown from the next Wait() (and thus from
// ParallelFor); later exceptions from the same batch are dropped. A still
// pending exception at destruction time is logged, not rethrown.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);
  void Wait();

  // Runs fn(i) for i in [0, n) across the pool and waits for completion.
  void ParallelFor(int n, const std::function<void(int)>& fn);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int active_ = 0;
  bool shutdown_ = false;
  std::exception_ptr pending_error_;
};

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_THREAD_POOL_H_
