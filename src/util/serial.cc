#include "util/serial.h"

namespace fedmigr::util {

void ByteWriter::WriteString(const std::string& s) {
  WriteU64(s.size());
  Append(s.data(), s.size());
}

void ByteWriter::WriteBytes(const std::vector<uint8_t>& bytes) {
  WriteU64(bytes.size());
  Append(bytes.data(), bytes.size());
}

void ByteWriter::WriteF32Vector(const std::vector<float>& values) {
  WriteU64(values.size());
  Append(values.data(), values.size() * sizeof(float));
}

void ByteWriter::WriteF64Vector(const std::vector<double>& values) {
  WriteU64(values.size());
  Append(values.data(), values.size() * sizeof(double));
}

void ByteWriter::WriteI32Vector(const std::vector<int>& values) {
  WriteU64(values.size());
  Append(values.data(), values.size() * sizeof(int));
}

void ByteWriter::WriteBoolVector(const std::vector<bool>& values) {
  WriteU64(values.size());
  for (bool v : values) WriteU8(v ? 1 : 0);
}

Status ByteReader::ReadBool(bool* value) {
  uint8_t raw = 0;
  FEDMIGR_RETURN_IF_ERROR(ReadU8(&raw));
  if (raw > 1) {
    return Status::InvalidArgument("malformed bool byte");
  }
  *value = raw != 0;
  return Status::Ok();
}

Status ByteReader::ReadCount(size_t element_size, uint64_t* count) {
  FEDMIGR_RETURN_IF_ERROR(ReadU64(count));
  if (element_size > 0 && *count > remaining() / element_size) {
    return Status::InvalidArgument("sequence length exceeds buffer");
  }
  return Status::Ok();
}

Status ByteReader::ReadString(std::string* s) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(ReadCount(1, &count));
  s->clear();
  if (count == 0) return Status::Ok();  // data_ may be null on empty input
  s->assign(reinterpret_cast<const char*>(data_ + offset_),
            static_cast<size_t>(count));
  offset_ += static_cast<size_t>(count);
  return Status::Ok();
}

Status ByteReader::ReadBytes(std::vector<uint8_t>* bytes) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(ReadCount(1, &count));
  bytes->clear();
  if (count == 0) return Status::Ok();
  bytes->assign(data_ + offset_, data_ + offset_ + count);
  offset_ += static_cast<size_t>(count);
  return Status::Ok();
}

Status ByteReader::ReadF32Vector(std::vector<float>* values) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(ReadCount(sizeof(float), &count));
  values->resize(static_cast<size_t>(count));
  if (count == 0) return Status::Ok();
  std::memcpy(values->data(), data_ + offset_, count * sizeof(float));
  offset_ += static_cast<size_t>(count) * sizeof(float);
  return Status::Ok();
}

Status ByteReader::ReadF64Vector(std::vector<double>* values) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(ReadCount(sizeof(double), &count));
  values->resize(static_cast<size_t>(count));
  if (count == 0) return Status::Ok();
  std::memcpy(values->data(), data_ + offset_, count * sizeof(double));
  offset_ += static_cast<size_t>(count) * sizeof(double);
  return Status::Ok();
}

Status ByteReader::ReadI32Vector(std::vector<int>* values) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(ReadCount(sizeof(int), &count));
  values->resize(static_cast<size_t>(count));
  if (count == 0) return Status::Ok();
  std::memcpy(values->data(), data_ + offset_, count * sizeof(int));
  offset_ += static_cast<size_t>(count) * sizeof(int);
  return Status::Ok();
}

Status ByteReader::ReadBoolVector(std::vector<bool>* values) {
  uint64_t count = 0;
  FEDMIGR_RETURN_IF_ERROR(ReadCount(1, &count));
  values->resize(static_cast<size_t>(count));
  for (size_t i = 0; i < count; ++i) {
    bool v = false;
    FEDMIGR_RETURN_IF_ERROR(ReadBool(&v));
    (*values)[i] = v;
  }
  return Status::Ok();
}

}  // namespace fedmigr::util
