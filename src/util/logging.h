// Minimal leveled logging plus CHECK-style assertions.
//
// Logging is stream-based: FEDMIGR_LOG(kInfo) << "trained " << n << " epochs";
// CHECK macros abort with a message on violated invariants; they guard
// programming errors (API misuse), while recoverable conditions use Status.

#ifndef FEDMIGR_UTIL_LOGGING_H_
#define FEDMIGR_UTIL_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace fedmigr::util {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global severity threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug"/"info"/"warning"/"error" (case-insensitive; "warn" also
// accepted). Returns false and leaves `out` untouched on unknown input.
bool ParseLogLevel(const std::string& name, LogLevel* out);

// Redirects formatted log lines (sans trailing newline) to `sink` instead
// of stderr; pass nullptr to restore stderr. The sink runs under the same
// mutex that serializes stderr emission, so it must not log. Intended for
// tests and telemetry capture.
using LogSink = std::function<void(LogLevel level, const std::string& line)>;
void SetLogSink(LogSink sink);

namespace internal_logging {

// Collects one message and emits it (with timestamp and level tag) on
// destruction. Not copyable; meant to be used as a temporary via the macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

// Like LogMessage but aborts the process in the destructor. Used by CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  FatalMessage(const FatalMessage&) = delete;
  FatalMessage& operator=(const FatalMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace fedmigr::util

#define FEDMIGR_LOG(level)                                          \
  ::fedmigr::util::internal_logging::LogMessage(                    \
      ::fedmigr::util::LogLevel::level, __FILE__, __LINE__)         \
      .stream()

#define FEDMIGR_CHECK(cond)                                         \
  if (!(cond))                                                      \
  ::fedmigr::util::internal_logging::FatalMessage(__FILE__, __LINE__, #cond) \
      .stream()

#define FEDMIGR_CHECK_EQ(a, b) FEDMIGR_CHECK((a) == (b))
#define FEDMIGR_CHECK_NE(a, b) FEDMIGR_CHECK((a) != (b))
#define FEDMIGR_CHECK_LT(a, b) FEDMIGR_CHECK((a) < (b))
#define FEDMIGR_CHECK_LE(a, b) FEDMIGR_CHECK((a) <= (b))
#define FEDMIGR_CHECK_GT(a, b) FEDMIGR_CHECK((a) > (b))
#define FEDMIGR_CHECK_GE(a, b) FEDMIGR_CHECK((a) >= (b))

#endif  // FEDMIGR_UTIL_LOGGING_H_
