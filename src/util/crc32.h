// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used to frame serialized model payloads so a truncated or bit-flipped
// transfer is detected at the receiver instead of silently loading garbage
// parameters (see nn/serialize and the fault-tolerance layer in net/fault).

#ifndef FEDMIGR_UTIL_CRC32_H_
#define FEDMIGR_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace fedmigr::util {

// CRC of `size` bytes starting at `data`. Pass a previous CRC as `crc` to
// checksum data incrementally (Crc32(b, nb, Crc32(a, na)) == CRC of a||b).
uint32_t Crc32(const void* data, size_t size, uint32_t crc = 0);

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_CRC32_H_
