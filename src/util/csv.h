// Table/CSV emission for benchmark harnesses.
//
// Every bench binary prints a paper-style table to stdout; `TableWriter`
// renders aligned plain-text and, optionally, writes the same rows as CSV so
// results can be post-processed.

#ifndef FEDMIGR_UTIL_CSV_H_
#define FEDMIGR_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace fedmigr::util {

// Column-aligned table with a header row. Cells are strings; numeric helpers
// format doubles compactly.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> header);

  // Starts a new row. Cells are appended with Add*() until the next AddRow().
  void AddRow();
  void AddCell(std::string value);
  void AddCell(double value, int precision = 2);
  void AddCell(int value);

  // Renders the table with padded columns.
  void Print(std::ostream& os) const;
  // Renders as RFC-4180-ish CSV (quotes cells containing commas/quotes).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with fixed precision (helper shared with TableWriter).
std::string FormatDouble(double value, int precision);

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_CSV_H_
