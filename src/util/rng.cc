#include "util/rng.h"

#include <cmath>
#include <numbers>

#include "util/logging.h"

namespace fedmigr::util {

namespace {

// SplitMix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

RngState Rng::State() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.words[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::Restore(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.words[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Split() { return Rng(Next()); }

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

int Rng::UniformInt(int n) {
  FEDMIGR_CHECK_GT(n, 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t bound = static_cast<uint64_t>(n);
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return static_cast<int>(value % bound);
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 0.0) u1 = Uniform();
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Categorical(const std::vector<double>& weights) {
  FEDMIGR_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    FEDMIGR_CHECK_GE(w, 0.0);
    total += w;
  }
  FEDMIGR_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return static_cast<int>(i);
  }
  return static_cast<int>(weights.size()) - 1;
}

void SaveRngState(const Rng& rng, ByteWriter* writer) {
  const RngState state = rng.State();
  for (uint64_t word : state.words) writer->WriteU64(word);
  writer->WriteBool(state.has_cached_normal);
  writer->WriteF64(state.cached_normal);
}

Status LoadRngState(ByteReader* reader, Rng* rng) {
  RngState state;
  for (auto& word : state.words) {
    FEDMIGR_RETURN_IF_ERROR(reader->ReadU64(&word));
  }
  FEDMIGR_RETURN_IF_ERROR(reader->ReadBool(&state.has_cached_normal));
  FEDMIGR_RETURN_IF_ERROR(reader->ReadF64(&state.cached_normal));
  rng->Restore(state);
  return Status::Ok();
}

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  FEDMIGR_CHECK_GE(k, 0);
  FEDMIGR_CHECK_LE(k, n);
  std::vector<int> all(n);
  for (int i = 0; i < n; ++i) all[i] = i;
  // Partial Fisher-Yates: the first k slots are the sample.
  for (int i = 0; i < k; ++i) {
    const int j = i + UniformInt(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace fedmigr::util
