#include "util/csv.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace fedmigr::util {

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

TableWriter::TableWriter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FEDMIGR_CHECK(!header_.empty());
}

void TableWriter::AddRow() { rows_.emplace_back(); }

void TableWriter::AddCell(std::string value) {
  FEDMIGR_CHECK(!rows_.empty()) << "AddRow() before AddCell()";
  FEDMIGR_CHECK_LT(rows_.back().size(), header_.size());
  rows_.back().push_back(std::move(value));
}

void TableWriter::AddCell(double value, int precision) {
  AddCell(FormatDouble(value, precision));
}

void TableWriter::AddCell(int value) { AddCell(std::to_string(value)); }

void TableWriter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << cell;
      if (c + 1 < header_.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TableWriter::PrintCsv(std::ostream& os) const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char ch : cell) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << escape(row[c]);
    }
    os << "\n";
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace fedmigr::util
