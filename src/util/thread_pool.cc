#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace fedmigr::util {

namespace {
// Set for the lifetime of WorkerLoop; lets nested parallel calls detect
// that they are already running on a pool thread and must not block on a
// pool (same pool: deadlock; other pool: oversubscription).
thread_local bool t_in_pool_worker = false;
}  // namespace

bool ThreadPool::InWorkerThread() { return t_in_pool_worker; }

ThreadPool::ThreadPool(int num_threads) {
  FEDMIGR_CHECK_GT(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
  if (pending_error_ != nullptr) {
    // Destructors must not throw; surface the dropped error in the log.
    try {
      std::rethrow_exception(pending_error_);
    } catch (const std::exception& e) {
      FEDMIGR_LOG(kError) << "thread pool destroyed with unobserved task "
                          << "exception: " << e.what();
    } catch (...) {
      FEDMIGR_LOG(kError) << "thread pool destroyed with unobserved task "
                          << "exception";
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    FEDMIGR_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (pending_error_ != nullptr) {
    // Take sole ownership under the lock (see WorkerLoop): from here on
    // the exception object lives and dies on this thread.
    std::exception_ptr error = std::move(pending_error_);
    pending_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (InWorkerThread()) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static chunking: one task per worker keeps queue overhead negligible
  // even for fine-grained bodies.
  const int chunks = std::min(n, num_threads());
  std::atomic<int> next{0};
  for (int c = 0; c < chunks; ++c) {
    Submit([&next, n, &fn] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::ParallelForRange(
    int64_t n, int64_t grain, const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  if (grain < 1) grain = 1;
  const int64_t num_chunks = (n + grain - 1) / grain;
  // Inline path walks the same chunk sequence as the dispatched path so
  // callers observe identical (begin, end) spans either way.
  if (num_chunks == 1 || num_threads() == 1 || InWorkerThread()) {
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t begin = c * grain;
      fn(begin, std::min(n, begin + grain));
    }
    return;
  }
  std::atomic<int64_t> next{0};
  const int tasks = static_cast<int>(
      std::min<int64_t>(num_chunks, num_threads()));
  for (int t = 0; t < tasks; ++t) {
    Submit([&next, n, grain, num_chunks, &fn] {
      for (int64_t c = next.fetch_add(1); c < num_chunks;
           c = next.fetch_add(1)) {
        const int64_t begin = c * grain;
        fn(begin, std::min(n, begin + grain));
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      // Keep the worker alive; the error is rethrown from Wait().
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error != nullptr && pending_error_ == nullptr) {
        // Transfer (not share) the reference: after the move this thread
        // holds nothing, so every later touch of the exception object —
        // rethrow, what(), final release — happens on the thread that
        // takes it out of pending_error_, with the mutex ordering the
        // handoff. Sharing the exception_ptr would release the refcount
        // from two threads and free the object on whichever lost the
        // race.
        pending_error_ = std::move(error);
      }
      --active_;
      if (queue_.empty() && active_ == 0) all_idle_.notify_all();
    }
    // A dropped secondary exception (pending_error_ was already set) is
    // destroyed here; it never escaped this thread.
  }
}

}  // namespace fedmigr::util
