// Small statistics helpers used by metrics collection and tests.

#ifndef FEDMIGR_UTIL_STATS_H_
#define FEDMIGR_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace fedmigr::util {

// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  // Population variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponential moving average with smoothing factor alpha in (0, 1].
class Ema {
 public:
  explicit Ema(double alpha) : alpha_(alpha) {}

  void Add(double x);
  bool empty() const { return !initialized_; }
  double value() const { return value_; }

 private:
  double alpha_;
  bool initialized_ = false;
  double value_ = 0.0;
};

// Arithmetic mean of a vector; 0 for an empty vector.
double Mean(const std::vector<double>& values);

// p-th percentile (0 <= p <= 100) by linear interpolation on a sorted copy.
double Percentile(std::vector<double> values, double p);

// One-pass descriptive summary of a sample set; the shared vocabulary for
// obs metric snapshots and bench reporting. All fields are 0 when empty.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

Summary Summarize(std::vector<double> values);

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_STATS_H_
