// Deterministic pseudo-random number generation.
//
// All stochastic components in the library (data synthesis, partitioning,
// SGD shuffling, DRL exploration, DP noise) draw from an explicitly seeded
// `Rng` so every experiment is reproducible from its seed. The generator is
// xoshiro256**, which is fast, high-quality, and trivially splittable.

#ifndef FEDMIGR_UTIL_RNG_H_
#define FEDMIGR_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/serial.h"

namespace fedmigr::util {

// Full generator state: the four xoshiro256** words plus the Box-Muller
// spare. Restoring it resumes the stream bit-identically — including the
// next Normal() draw — which the run-snapshot subsystem relies on.
struct RngState {
  uint64_t words[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

// xoshiro256** engine with convenience distributions. Copyable: copying
// forks the stream (both copies produce the same subsequent values).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // State export/import for durable snapshots.
  RngState State() const;
  void Restore(const RngState& state);

  // Raw 64 random bits.
  uint64_t Next();

  // Derives an independent generator; deterministic in (state, call order).
  Rng Split();

  // Uniform in [0, 1).
  double Uniform();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n). Requires n > 0.
  int UniformInt(int n);
  // Standard normal via Box-Muller.
  double Normal();
  // Normal with the given mean / standard deviation.
  double Normal(double mean, double stddev);
  // Bernoulli trial with success probability p.
  bool Bernoulli(double p);

  // Samples an index according to (unnormalized, non-negative) weights.
  // Requires at least one strictly positive weight.
  int Categorical(const std::vector<double>& weights);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (int i = static_cast<int>(items.size()) - 1; i > 0; --i) {
      const int j = UniformInt(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  // k distinct indices drawn uniformly from [0, n). Requires 0 <= k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

 private:
  uint64_t state_[4];
  // Box-Muller produces pairs; cache the spare value.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

// Byte-stream helpers for snapshot serialization.
void SaveRngState(const Rng& rng, ByteWriter* writer);
Status LoadRngState(ByteReader* reader, Rng* rng);

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_RNG_H_
