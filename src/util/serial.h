// Bounds-checked binary (de)serialization primitives.
//
// The run-snapshot subsystem (core/snapshot) serializes state from every
// layer — models, optimizer moments, RNG streams, replay buffers, fault
// state — into one little-endian byte stream. `ByteWriter` appends
// primitives; `ByteReader` reads them back with full bounds checking,
// returning `Status` errors (never crashing) on truncated or malformed
// input, so corrupted snapshots degrade into clean load failures.

#ifndef FEDMIGR_UTIL_SERIAL_H_
#define FEDMIGR_UTIL_SERIAL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedmigr::util {

class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t value) { Append(&value, sizeof(value)); }
  void WriteU32(uint32_t value) { Append(&value, sizeof(value)); }
  void WriteU64(uint64_t value) { Append(&value, sizeof(value)); }
  void WriteI32(int32_t value) { Append(&value, sizeof(value)); }
  void WriteI64(int64_t value) { Append(&value, sizeof(value)); }
  void WriteF32(float value) { Append(&value, sizeof(value)); }
  void WriteF64(double value) { Append(&value, sizeof(value)); }
  void WriteBool(bool value) { WriteU8(value ? 1 : 0); }

  // Length-prefixed (u64 count) sequences.
  void WriteString(const std::string& s);
  void WriteBytes(const std::vector<uint8_t>& bytes);
  void WriteF32Vector(const std::vector<float>& values);
  void WriteF64Vector(const std::vector<double>& values);
  void WriteI32Vector(const std::vector<int>& values);
  void WriteBoolVector(const std::vector<bool>& values);

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> TakeBytes() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  void Append(const void* data, size_t size) {
    if (size == 0) return;  // empty vectors have a null data()
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + size);
  }

  std::vector<uint8_t> bytes_;
};

// Non-owning view over a byte buffer; the buffer must outlive the reader.
// Every Read* checks the remaining length first and fails with
// kInvalidArgument on truncation, leaving the cursor untouched.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  Status ReadU8(uint8_t* value) { return ReadRaw(value, sizeof(*value)); }
  Status ReadU32(uint32_t* value) { return ReadRaw(value, sizeof(*value)); }
  Status ReadU64(uint64_t* value) { return ReadRaw(value, sizeof(*value)); }
  Status ReadI32(int32_t* value) { return ReadRaw(value, sizeof(*value)); }
  Status ReadI64(int64_t* value) { return ReadRaw(value, sizeof(*value)); }
  Status ReadF32(float* value) { return ReadRaw(value, sizeof(*value)); }
  Status ReadF64(double* value) { return ReadRaw(value, sizeof(*value)); }
  Status ReadBool(bool* value);

  Status ReadString(std::string* s);
  Status ReadBytes(std::vector<uint8_t>* bytes);
  Status ReadF32Vector(std::vector<float>* values);
  Status ReadF64Vector(std::vector<double>* values);
  Status ReadI32Vector(std::vector<int>* values);
  Status ReadBoolVector(std::vector<bool>* values);

  size_t remaining() const { return size_ - offset_; }
  bool AtEnd() const { return offset_ == size_; }

 private:
  Status ReadRaw(void* out, size_t size) {
    if (remaining() < size) {
      return Status::InvalidArgument("byte stream truncated");
    }
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
    return Status::Ok();
  }
  // Validates a u64 element count against the bytes actually left.
  Status ReadCount(size_t element_size, uint64_t* count);

  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_SERIAL_H_
