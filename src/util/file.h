// Durable file I/O for checkpoints and run snapshots.
//
// `AtomicWriteFile` is the crash-safety primitive: the payload is written
// to `<path>.tmp`, fsync'd, and renamed over the target, so a crash at any
// instant leaves either the old file or the new one at `path` — never a
// torn mixture. The containing directory is fsync'd after the rename so
// the publish survives a power loss too.

#ifndef FEDMIGR_UTIL_FILE_H_
#define FEDMIGR_UTIL_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedmigr::util {

// Atomically replaces `path` with `data` (tmp file + fsync + rename).
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& data);

// Reads an entire file into memory.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

bool FileExists(const std::string& path);

// Removes a file; missing files are not an error.
Status RemoveFile(const std::string& path);

// Creates a directory (and parents); an existing directory is not an error.
Status MakeDirectories(const std::string& path);

// Names of the regular files directly inside `dir` (not full paths),
// unsorted. Missing or unreadable directories yield an error.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_FILE_H_
