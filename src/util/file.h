// Durable file I/O for checkpoints and run snapshots.
//
// `AtomicWriteFile` is the crash-safety primitive: the payload is written
// to `<path>.tmp`, fsync'd, and renamed over the target, so a crash at any
// instant leaves either the old file or the new one at `path` — never a
// torn mixture. The containing directory is fsync'd after the rename so
// the publish survives a power loss too.

#ifndef FEDMIGR_UTIL_FILE_H_
#define FEDMIGR_UTIL_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace fedmigr::util {

// Atomically replaces `path` with `data` (tmp file + fsync + rename).
Status AtomicWriteFile(const std::string& path,
                       const std::vector<uint8_t>& data);

// Reads an entire file into memory.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

bool FileExists(const std::string& path);

// Removes a file; missing files are not an error.
Status RemoveFile(const std::string& path);

// Creates a directory (and parents); an existing directory is not an error.
Status MakeDirectories(const std::string& path);

// Names of the regular files directly inside `dir` (not full paths),
// unsorted. Missing or unreadable directories yield an error.
Result<std::vector<std::string>> ListDirectory(const std::string& dir);

// Append-only file handle for journals: the complement of AtomicWriteFile
// for logs that grow one framed chunk at a time. Appends are plain write()
// calls (a crash can tear at most the final frame — readers validate frame
// CRCs and truncate the torn tail); Sync() makes everything written so far
// durable. Truncate() discards a suffix, which resume uses to drop frames
// past the last committed epoch.
class AppendFile {
 public:
  AppendFile() = default;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;

  // Opens (creating if missing) and positions the write cursor at the end.
  Status Open(const std::string& path);
  bool is_open() const { return fd_ >= 0; }
  // Current write offset == file size while the handle is open.
  uint64_t size() const { return size_; }

  Status Append(const void* data, size_t size);
  Status Append(const std::vector<uint8_t>& data);
  // Shrinks the file to `new_size` bytes and moves the cursor there.
  Status Truncate(uint64_t new_size);
  Status Sync();
  Status Close();

 private:
  int fd_ = -1;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace fedmigr::util

#endif  // FEDMIGR_UTIL_FILE_H_
