#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace fedmigr::util {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Ema::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
  } else {
    value_ = alpha_ * x + (1.0 - alpha_) * value_;
  }
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Percentile(std::vector<double> values, double p) {
  FEDMIGR_CHECK(!values.empty());
  FEDMIGR_CHECK_GE(p, 0.0);
  FEDMIGR_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

Summary Summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.mean = Mean(values);
  s.min = values.front();
  s.max = values.back();
  s.p50 = Percentile(values, 50.0);
  s.p90 = Percentile(values, 90.0);
  s.p99 = Percentile(values, 99.0);
  return s;
}

}  // namespace fedmigr::util
