// Quickstart: train the C10 analogue with FedAvg and FedMigr on a non-IID
// partition and compare accuracy and traffic.
//
//   $ ./quickstart
//
// Demonstrates the three public-API layers most users need:
//   core::MakeWorkload     — dataset + partition + topology in one call
//   fl::MakeSchemeByName / core::MakeFedMigr — scheme assembly
//   core::RunScheme        — the experiment loop

#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "core/fedmigr.h"
#include "util/csv.h"

namespace {

using fedmigr::core::MakeFedMigr;
using fedmigr::core::MakeWorkload;
using fedmigr::core::RunScheme;

void Configure(fedmigr::fl::TrainerConfig* config,
               const fedmigr::core::Workload& workload) {
  fedmigr::core::ApplyWorkloadDefaults(workload, config);
  config->max_epochs = 120;
  config->eval_every = 10;
  config->learning_rate = 0.05;
  config->batch_size = 16;
}

}  // namespace

int main() {
  fedmigr::core::WorkloadConfig wc;
  wc.dataset = "c10";
  // LAN-correlated label skew: clients within a LAN share a distribution.
  wc.partition = fedmigr::core::PartitionKind::kLanShard;
  wc.num_clients = 10;
  wc.num_lans = 3;
  wc.signal_override = 0.35;  // the calibrated difficulty (DESIGN.md §6)
  const auto workload = MakeWorkload(wc);

  std::printf(
      "Workload: %s, %d clients in %d LANs, LAN-correlated non-IID split\n",
      wc.dataset.c_str(), wc.num_clients, wc.num_lans);

  // FedAvg: aggregate every epoch, no migration.
  auto fedavg = fedmigr::fl::MakeSchemeByName("fedavg");
  Configure(&fedavg.config, workload);
  const auto fedavg_result = RunScheme(workload, std::move(fedavg));

  // FedMigr: DRL-guided migration, aggregation every 5 epochs (4
  // migrations per global iteration).
  fedmigr::core::FedMigrOptions options;
  options.agg_period = 5;
  options.policy.online_learning = true;
  auto fedmigr_scheme = MakeFedMigr(workload.topology, workload.num_classes,
                                    options);
  Configure(&fedmigr_scheme.config, workload);
  const auto fedmigr_result = RunScheme(workload, std::move(fedmigr_scheme));

  fedmigr::util::TableWriter table(
      {"scheme", "final acc (%)", "best acc (%)", "traffic (MB)",
       "C2S (MB)", "C2C (MB)", "sim time (s)"});
  for (const auto* result : {&fedavg_result, &fedmigr_result}) {
    table.AddRow();
    table.AddCell(result->scheme);
    table.AddCell(100.0 * result->final_accuracy, 1);
    table.AddCell(100.0 * result->best_accuracy, 1);
    table.AddCell(result->traffic_gb * 1000.0, 1);
    table.AddCell(result->c2s_gb * 1000.0, 1);
    table.AddCell(result->c2c_gb * 1000.0, 1);
    table.AddCell(result->time_s, 0);
  }
  table.Print(std::cout);
  return 0;
}
