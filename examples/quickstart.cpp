// Quickstart: train the C10 analogue with FedAvg and FedMigr on a non-IID
// partition and compare accuracy and traffic.
//
//   $ ./quickstart
//   $ ./quickstart --snapshot-dir=/tmp/quickstart   # crash-safe run
//   $ ./quickstart --snapshot-dir=/tmp/quickstart --resume
//
// Demonstrates the three public-API layers most users need:
//   core::MakeWorkload     — dataset + partition + topology in one call
//   fl::MakeSchemeByName / core::MakeFedMigr — scheme assembly
//   core::RunScheme        — the experiment loop
//
// With --snapshot-dir the run publishes a durable snapshot every 10 epochs
// (and on Ctrl-C); --resume continues bit-identically from the newest one,
// so the resumed table matches an uninterrupted run exactly.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "core/fedmigr.h"
#include "core/snapshot.h"
#include "util/csv.h"

namespace {

using fedmigr::core::MakeFedMigr;
using fedmigr::core::MakeWorkload;
using fedmigr::core::RunScheme;

// Snapshots for one scheme go to <dir>/<scheme>/ so the two runs in this
// example keep separate histories.
fedmigr::core::RunControl SnapshotControl(const std::string& dir,
                                          bool resume,
                                          const std::string& scheme,
                                          int* resumed_from) {
  fedmigr::core::RunControl control;
  if (dir.empty()) return control;
  control.snapshot.directory = dir + "/" + scheme;
  control.snapshot.every_epochs = 10;
  control.resume = resume;
  control.handle_signals = true;
  control.resumed_from_epoch = resumed_from;
  return control;
}

void Configure(fedmigr::fl::TrainerConfig* config,
               const fedmigr::core::Workload& workload) {
  fedmigr::core::ApplyWorkloadDefaults(workload, config);
  config->max_epochs = 120;
  config->eval_every = 10;
  config->learning_rate = 0.05;
  config->batch_size = 16;
}

}  // namespace

int main(int argc, char** argv) {
  std::string snapshot_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--snapshot-dir=", 15) == 0) {
      snapshot_dir = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    }
  }

  fedmigr::core::WorkloadConfig wc;
  wc.dataset = "c10";
  // LAN-correlated label skew: clients within a LAN share a distribution.
  wc.partition = fedmigr::core::PartitionKind::kLanShard;
  wc.num_clients = 10;
  wc.num_lans = 3;
  wc.signal_override = 0.35;  // the calibrated difficulty (DESIGN.md §6)
  const auto workload = MakeWorkload(wc);

  std::printf(
      "Workload: %s, %d clients in %d LANs, LAN-correlated non-IID split\n",
      wc.dataset.c_str(), wc.num_clients, wc.num_lans);

  // FedAvg: aggregate every epoch, no migration.
  auto fedavg = fedmigr::fl::MakeSchemeByName("fedavg");
  Configure(&fedavg.config, workload);
  int fedavg_resumed = 0;
  const auto fedavg_result =
      RunScheme(workload, std::move(fedavg),
                SnapshotControl(snapshot_dir, resume, "fedavg",
                                &fedavg_resumed));

  // FedMigr: DRL-guided migration, aggregation every 5 epochs (4
  // migrations per global iteration).
  fedmigr::core::FedMigrOptions options;
  options.agg_period = 5;
  options.policy.online_learning = true;
  auto fedmigr_scheme = MakeFedMigr(workload.topology, workload.num_classes,
                                    options);
  Configure(&fedmigr_scheme.config, workload);
  int fedmigr_resumed = 0;
  const auto fedmigr_result =
      RunScheme(workload, std::move(fedmigr_scheme),
                SnapshotControl(snapshot_dir, resume, "fedmigr",
                                &fedmigr_resumed));

  if (resume && (fedavg_resumed > 0 || fedmigr_resumed > 0)) {
    std::printf("Resumed: fedavg from epoch %d, fedmigr from epoch %d\n",
                fedavg_resumed, fedmigr_resumed);
  }
  if (fedavg_result.interrupted || fedmigr_result.interrupted) {
    std::printf(
        "Interrupted — rerun with --snapshot-dir=%s --resume to continue.\n",
        snapshot_dir.c_str());
  }

  fedmigr::util::TableWriter table(
      {"scheme", "final acc (%)", "best acc (%)", "traffic (MB)",
       "C2S (MB)", "C2C (MB)", "sim time (s)"});
  for (const auto* result : {&fedavg_result, &fedmigr_result}) {
    table.AddRow();
    table.AddCell(result->scheme);
    table.AddCell(100.0 * result->final_accuracy, 1);
    table.AddCell(100.0 * result->best_accuracy, 1);
    table.AddCell(result->traffic_gb * 1000.0, 1);
    table.AddCell(result->c2s_gb * 1000.0, 1);
    table.AddCell(result->c2c_gb * 1000.0, 1);
    table.AddCell(result->time_s, 0);
  }
  table.Print(std::cout);
  return 0;
}
