// Synchronous vs asynchronous federated optimization on a heterogeneous
// fleet (the paper's stated future direction, cf. Xie et al. in its
// related work).
//
// A straggler-heavy fleet makes the trade-off visible: synchronous FedAvg
// waits for the slowest device every epoch, while the asynchronous server
// blends updates as they arrive, discounting stale ones.
//
//   $ ./async_vs_sync

#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "fl/async.h"
#include "fl/schemes.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  core::WorkloadConfig wc;
  wc.partition = core::PartitionKind::kIid;  // isolate the timing effects
  wc.signal_override = 0.35;
  const core::Workload workload = core::MakeWorkload(wc);

  // Heterogeneous fleet: two crippling stragglers.
  std::vector<net::DeviceProfile> devices = net::MakeUniformFleet(10, 400.0);
  devices[8].samples_per_second = 40.0;
  devices[9].samples_per_second = 40.0;

  // --- Synchronous FedAvg. ------------------------------------------------
  fl::SchemeSetup sync = fl::MakeFedAvg();
  core::ApplyWorkloadDefaults(workload, &sync.config);
  sync.config.max_epochs = 60;
  sync.config.eval_every = 20;
  sync.config.learning_rate = 0.08;
  fl::Trainer trainer(sync.config, &workload.data.train, workload.partition,
                      &workload.data.test, workload.topology, devices,
                      workload.model_factory, std::move(sync.policy));
  const fl::RunResult sync_result = trainer.Run();

  // --- Asynchronous FL, same compute substrate. ---------------------------
  fl::AsyncConfig async_config;
  async_config.max_updates = 60 * 10;  // same client-rounds as 60 epochs
  async_config.eval_every = 100;
  async_config.learning_rate = 0.08;
  fl::AsyncTrainer async_trainer(
      async_config, &workload.data.train, workload.partition,
      &workload.data.test, workload.topology, devices,
      workload.model_factory);
  const fl::AsyncRunResult async_result = async_trainer.Run();

  std::printf(
      "Synchronous vs asynchronous FL with 2 stragglers (10 clients, IID "
      "data, equal client-round counts)\n\n");
  util::TableWriter table({"mode", "accuracy (%)", "sim wall-clock (s)",
                           "traffic (MB)"});
  table.AddRow();
  table.AddCell("synchronous (FedAvg)");
  table.AddCell(100.0 * sync_result.final_accuracy, 1);
  table.AddCell(sync_result.time_s, 0);
  table.AddCell(sync_result.traffic_gb * 1000.0, 1);
  table.AddRow();
  table.AddCell("asynchronous (FedAsync-style)");
  table.AddCell(100.0 * async_result.final_accuracy, 1);
  table.AddCell(async_result.time_s, 0);
  table.AddCell(async_result.traffic_gb * 1000.0, 1);
  table.Print(std::cout);
  std::printf(
      "\nThe synchronous loop pays the straggler penalty every epoch; the "
      "asynchronous server\nkeeps fast devices busy and reaches comparable "
      "accuracy in far less simulated time.\n");
  return 0;
}
