// Domain scenario from the paper's introduction: surveillance cameras.
//
// "Two surveillance cameras, separately deployed in a station hall and on
// a street-side, may capture quite different views." We model three sites
// (station / street / mall), each a LAN of cameras whose local data covers
// only that site's object classes, and compare plain FedAvg against
// FedMigr with DRL-guided migration — including what happens to the WAN
// bill.
//
//   $ ./edge_cameras

#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "core/fedmigr.h"
#include "data/distribution.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  // 9 cameras across 3 sites; classes are site-correlated (LAN shards).
  core::WorkloadConfig wc;
  wc.dataset = "c10";  // 10 object categories
  wc.partition = core::PartitionKind::kLanShard;
  wc.num_clients = 9;
  wc.num_lans = 3;
  wc.signal_override = 0.35;
  const core::Workload workload = core::MakeWorkload(wc);

  // Show how skewed each site is relative to the global distribution.
  const auto population = data::PopulationDistribution(workload.data.train);
  std::printf("Site skew (EMD between camera data and global mix):\n");
  const char* sites[] = {"station", "street", "mall"};
  for (int cam = 0; cam < 9; cam += 3) {
    const auto dist = data::LabelDistribution(
        workload.data.train, workload.partition[static_cast<size_t>(cam)]);
    std::printf("  %-8s EMD = %.2f (max 2.0)\n",
                sites[workload.topology.lan_of(cam)],
                data::EmdDistance(dist, population));
  }

  auto configure = [&](fl::TrainerConfig* config) {
    core::ApplyWorkloadDefaults(workload, config);
    config->max_epochs = 120;
    config->learning_rate = 0.05;
    config->batch_size = 16;
    config->eval_every = 20;
  };

  fl::SchemeSetup fedavg = fl::MakeSchemeByName("fedavg");
  configure(&fedavg.config);
  const fl::RunResult fedavg_result = RunScheme(workload, std::move(fedavg));

  core::FedMigrOptions options;
  options.agg_period = 5;
  options.policy.online_learning = true;
  fl::SchemeSetup fedmigr_scheme =
      core::MakeFedMigr(workload.topology, workload.num_classes, options);
  configure(&fedmigr_scheme.config);
  const fl::RunResult fedmigr_result =
      RunScheme(workload, std::move(fedmigr_scheme));

  std::printf("\nShared detector quality after 120 training epochs:\n\n");
  util::TableWriter table({"scheme", "accuracy (%)", "WAN traffic (MB)",
                           "LAN traffic (MB)", "wall-clock (s, simulated)"});
  for (const auto* result : {&fedavg_result, &fedmigr_result}) {
    table.AddRow();
    table.AddCell(result->scheme);
    table.AddCell(100.0 * result->final_accuracy, 1);
    table.AddCell(result->c2s_gb * 1000.0, 1);
    table.AddCell(result->c2c_gb * 1000.0, 1);
    table.AddCell(result->time_s, 0);
  }
  table.Print(std::cout);
  std::printf(
      "\nFedMigr trains the shared detector with most traffic kept inside "
      "the sites' LANs\ninstead of the metered WAN uplink.\n");
  return 0;
}
