// Differentially-private FedMigr (Section III-E of the paper).
//
// Every model that leaves a client — whether migrating to a peer or
// uploading to the server — is clipped (Eq. 30) and perturbed with the
// Gaussian mechanism (Eq. 31). This example sweeps the privacy budget and
// reports the privacy/utility trade-off plus the per-release noise scale.
//
//   $ ./private_fl

#include <cstdio>
#include <iostream>

#include "core/experiment.h"
#include "core/fedmigr.h"
#include "dp/accountant.h"
#include "dp/gaussian.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  core::WorkloadConfig wc;
  wc.partition = core::PartitionKind::kLanShard;
  wc.signal_override = 0.35;
  const core::Workload workload = core::MakeWorkload(wc);

  struct BudgetCase {
    const char* label;
    double epsilon;
  };
  const BudgetCase cases[] = {
      {"off (eps = inf)", 0.0}, {"eps = 300", 300.0}, {"eps = 100", 100.0}};

  std::printf("Differentially-private FedMigr on the C10 analogue\n\n");
  util::TableWriter table({"privacy budget", "sigma / release",
                           "accuracy (%)", "epochs"});
  for (const BudgetCase& c : cases) {
    core::FedMigrOptions options;
    options.agg_period = 5;
    options.policy.online_learning = true;
    fl::SchemeSetup setup =
        core::MakeFedMigr(workload.topology, workload.num_classes, options);
    core::ApplyWorkloadDefaults(workload, &setup.config);
    setup.config.max_epochs = 100;
    setup.config.learning_rate = 0.05;
    setup.config.batch_size = 16;
    setup.config.eval_every = 25;
    setup.config.dp.epsilon = c.epsilon;
    setup.config.dp.clip_norm = 60.0;

    double sigma = 0.0;
    if (setup.config.dp.enabled()) {
      sigma = dp::GaussianSigma(setup.config.dp);
    }
    const fl::RunResult result = RunScheme(workload, std::move(setup));
    table.AddRow();
    table.AddCell(c.label);
    table.AddCell(sigma, 2);
    table.AddCell(100.0 * result.final_accuracy, 1);
    table.AddCell(result.epochs_run);
  }
  table.Print(std::cout);

  // Accounting: what a total budget means per release.
  dp::PrivacyAccountant accountant(100.0, 1e-3);
  const int releases = 100;  // ~one protected transfer per epoch
  const double per_release =
      dp::PrivacyAccountant::PerReleaseEpsilon(100.0, releases);
  for (int i = 0; i < releases; ++i) accountant.Spend(per_release, 1e-5);
  std::printf(
      "\nbasic composition: a total budget of eps=100 over %d releases "
      "allows eps=%.2f per release\n(accountant: spent %.1f, exhausted: "
      "%s)\n",
      releases, per_release, accountant.epsilon_spent(),
      accountant.Exhausted() ? "yes" : "no");
  return 0;
}
