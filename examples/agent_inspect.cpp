// Agent inspection: pre-train a DDPG agent on the surrogate environment and
// report (a) episode-return learning curves and (b) how the trained actor
// scores prototypical actions — high-gain cheap moves should outrank
// low-gain expensive ones.
//
//   $ ./agent_inspect [episodes=40] [clients=10]

#include <cstdio>
#include <map>
#include <string>

#include "rl/agent.h"
#include "rl/pretrain.h"
#include "rl/surrogate.h"

namespace {

std::vector<float> MakeRow(double gain, double same_lan, double time,
                           double stay) {
  // Layout must match rl::ActionFeatures.
  return {static_cast<float>(gain / 2.0), static_cast<float>(same_lan),
          static_cast<float>(time),       static_cast<float>(stay),
          0.5f,                           0.5f,
          0.1f,                           0.1f};
}

}  // namespace

int main(int argc, char** argv) {
  int episodes = 40;
  int clients = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("episodes=", 0) == 0) episodes = std::stoi(arg.substr(9));
    if (arg.rfind("clients=", 0) == 0) clients = std::stoi(arg.substr(8));
  }

  fedmigr::rl::AgentConfig agent_config;
  fedmigr::rl::DdpgAgent agent(agent_config);

  fedmigr::rl::SurrogateConfig env_config;
  env_config.num_clients = clients;
  fedmigr::rl::PretrainOptions options;
  options.episodes = episodes;
  const auto report = fedmigr::rl::Pretrain(&agent, env_config, options);

  std::printf("pretraining: %d episodes, %d transitions\n", report.episodes,
              report.transitions);
  std::printf("episode return: first %.2f -> last %.2f\n",
              report.first_episode_return, report.last_episode_return);

  struct Probe {
    const char* label;
    std::vector<float> row;
  };
  const Probe probes[] = {
      {"high gain, same LAN (cheap)", MakeRow(2.0, 1.0, 0.05, 0.0)},
      {"high gain, cross LAN (slow)", MakeRow(2.0, 0.0, 0.60, 0.0)},
      {"low gain,  same LAN (cheap)", MakeRow(0.2, 1.0, 0.05, 0.0)},
      {"low gain,  cross LAN (slow)", MakeRow(0.2, 0.0, 0.60, 0.0)},
      {"stay home", MakeRow(0.0, 1.0, 0.0, 1.0)},
  };
  std::printf("\nactor scores (higher = preferred):\n");
  for (const auto& probe : probes) {
    const double score = agent.Score({probe.row})[0];
    const double q = agent.Q(probe.row);
    std::printf("  %-30s score=%8.4f  Q=%8.4f\n", probe.label, score, q);
  }
  return 0;
}
