// Scheme sweep: run any subset of the five schemes on a configurable
// workload and print a comparison table. Doubles as the library's
// command-line playground.
//
//   $ ./scheme_sweep [key=value ...]
//
// Keys (defaults in brackets):
//   dataset=c10|c100|imagenet100   [c10]
//   partition=iid|shard|dominance|classlack [shard]
//   param=<double>                 partition parameter      [0]
//   clients=<int>                  [10]    lans=<int>       [3]
//   noise=<double>                 dataset noise override   [0 = default]
//   epochs=<int>                   [150]   agg=<int>        [20]
//   lr=<double>                    [0.08]  batch=<int>      [32]
//   eval=<int>                     evaluation period        [10]
//   target=<double>                target accuracy in [0,1] [off]
//   schemes=a,b,...                [fedavg,fedprox,fedswap,randmigr,fedmigr]
//   seed=<int>                     [5]

#include <cstdio>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/fedmigr.h"
#include "util/csv.h"

namespace {

using fedmigr::core::PartitionKind;

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) continue;
    args[arg.substr(0, eq)] = arg.substr(eq + 1);
  }
  return args;
}

std::string Get(const std::map<std::string, std::string>& args,
                const std::string& key, const std::string& fallback) {
  const auto it = args.find(key);
  return it == args.end() ? fallback : it->second;
}

std::vector<std::string> Split(const std::string& csv) {
  std::vector<std::string> out;
  std::stringstream stream(csv);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = ParseArgs(argc, argv);

  fedmigr::core::WorkloadConfig wc;
  wc.dataset = Get(args, "dataset", "c10");
  const std::string partition = Get(args, "partition", "shard");
  if (partition == "iid") {
    wc.partition = PartitionKind::kIid;
  } else if (partition == "shard") {
    wc.partition = PartitionKind::kShard;
  } else if (partition == "lanshard") {
    wc.partition = PartitionKind::kLanShard;
  } else if (partition == "dominance") {
    wc.partition = PartitionKind::kDominance;
  } else if (partition == "classlack") {
    wc.partition = PartitionKind::kClassLack;
  } else {
    std::fprintf(stderr, "unknown partition '%s'\n", partition.c_str());
    return 1;
  }
  wc.partition_param = std::stod(Get(args, "param", "0"));
  wc.num_clients = std::stoi(Get(args, "clients", "10"));
  wc.num_lans = std::stoi(Get(args, "lans", "3"));
  wc.noise_override = std::stod(Get(args, "noise", "0"));
  wc.signal_override = std::stod(Get(args, "signal", "0"));
  wc.train_per_class_override = std::stoi(Get(args, "tpc", "0"));
  wc.seed = static_cast<uint64_t>(std::stoll(Get(args, "seed", "5")));

  const int epochs = std::stoi(Get(args, "epochs", "150"));
  const int agg = std::stoi(Get(args, "agg", "20"));
  const double lr = std::stod(Get(args, "lr", "0.08"));
  const int batch = std::stoi(Get(args, "batch", "32"));
  const int eval = std::stoi(Get(args, "eval", "10"));
  const double target = std::stod(Get(args, "target", "0"));
  const std::vector<std::string> schemes =
      Split(Get(args, "schemes", "fedavg,fedprox,fedswap,randmigr,fedmigr"));

  const auto workload = fedmigr::core::MakeWorkload(wc);
  std::printf("dataset=%s partition=%s clients=%d epochs=%d agg=%d lr=%.3f\n",
              wc.dataset.c_str(), partition.c_str(), wc.num_clients, epochs,
              agg, lr);

  fedmigr::util::TableWriter table(
      {"scheme", "final acc (%)", "best acc (%)", "traffic (MB)", "C2S (MB)",
       "time (s)", "epochs"});
  for (const std::string& name : schemes) {
    fedmigr::fl::SchemeSetup setup;
    if (name == "fedmigr") {
      fedmigr::core::FedMigrOptions options;
      options.agg_period = agg;
      options.policy.online_learning = true;
      options.policy.rho = std::stod(Get(args, "rho", "0.3"));
      options.policy.explore = Get(args, "explore", "0") == "1";
      options.pretrain.episodes =
          std::stoi(Get(args, "pretrain_episodes", "20"));
      options.pretrain.train_steps_per_epoch =
          std::stoi(Get(args, "pretrain_steps", "1"));
      setup = fedmigr::core::MakeFedMigr(workload.topology,
                                         workload.num_classes, options);
    } else {
      setup = fedmigr::fl::MakeSchemeByName(name, agg);
    }
    setup.config.max_epochs = epochs;
    setup.config.learning_rate = lr;
    setup.config.batch_size = batch;
    setup.config.eval_every = eval;
    if (target > 0.0) setup.config.target_accuracy = target;

    const auto result = RunScheme(workload, std::move(setup));
    table.AddRow();
    table.AddCell(result.scheme);
    table.AddCell(100.0 * result.final_accuracy, 1);
    table.AddCell(100.0 * result.best_accuracy, 1);
    table.AddCell(result.traffic_gb * 1000.0, 1);
    table.AddCell(result.c2s_gb * 1000.0, 1);
    table.AddCell(result.time_s, 0);
    table.AddCell(result.epochs_run);
  }
  table.Print(std::cout);
  return 0;
}
