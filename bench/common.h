// Shared configuration for the paper-reproduction benches.
//
// Every bench binary regenerates one table or figure of the FedMigr paper
// on the synthetic workloads (see DESIGN.md for the substitution table).
// The knobs here are the calibrated operating point at which the synthetic
// system reproduces the paper's qualitative shapes within seconds-scale
// runs: weak class signal (so federated averaging under label skew is
// genuinely hard), small batches (real client drift per epoch), aggregation
// every 5 epochs with migrations in between.

#ifndef FEDMIGR_BENCH_COMMON_H_
#define FEDMIGR_BENCH_COMMON_H_

#include <string>

#include "core/experiment.h"
#include "core/fedmigr.h"
#include "core/snapshot.h"
#include "dp/gaussian.h"
#include "fl/robust.h"
#include "fl/schemes.h"
#include "net/budget.h"
#include "net/fault.h"

namespace fedmigr::bench {

struct BenchWorkloadOptions {
  std::string dataset = "c10";
  core::PartitionKind partition = core::PartitionKind::kLanShard;
  double partition_param = 0.0;
  int num_clients = 10;
  int num_lans = 3;
  int train_per_class = 60;
  double signal = 0.35;  // class-prototype scale (task difficulty)
  uint64_t seed = 5;
};

core::Workload MakeBenchWorkload(const BenchWorkloadOptions& options);

struct BenchRunOptions {
  int max_epochs = 120;
  int agg_period = 5;  // M + 1 for the migration schemes
  double learning_rate = 0.05;
  int batch_size = 16;
  int eval_every = 20;
  double target_accuracy = -1.0;
  net::Budget budget;
  dp::DpConfig dp;
  // Fault model for the run (default: disabled, the fault-free path).
  net::FaultConfig fault;
  // Robustness layer (default: inert, the legacy bit-identical path).
  fl::RobustConfig robust;
  // Cohort scheduling: activate `cohort_size` clients per round (0 = all,
  // the legacy full-participation path). See TrainerConfig::cohort_size.
  int cohort_size = 0;
  // Round-progress watchdog quorum (0 = disabled). See
  // TrainerConfig::quorum_fraction.
  double quorum_fraction = 0.0;
  uint64_t seed = 1;
};

// Scheme names: fedavg | fedprox | fedswap | randmigr | fedmigr |
// fedmigr-flmm | maxemd | crosslan | withinlan | randonly (random migration
// policy, used by Fig. 3 where all three strategies share the same loop).
fl::SchemeSetup MakeBenchScheme(const std::string& name,
                                const core::Workload& workload,
                                const BenchRunOptions& options);

// Builds the scheme and runs it on the workload.
fl::RunResult RunBench(const core::Workload& workload,
                       const std::string& scheme,
                       const BenchRunOptions& options);

// Crash-safety flags shared by the bench binaries:
//   --snapshot-dir=DIR   durable run snapshots under DIR (empty = off)
//   --snapshot-every=N   snapshot cadence in completed epochs (default 1)
//   --snapshot-keep=N    snapshots retained per run (default 2)
//   --resume             continue from the newest valid snapshot
// Unrecognized arguments are ignored, so binaries can layer their own.
struct SnapshotFlags {
  std::string directory;
  int every_epochs = 1;
  int keep = 2;
  bool resume = false;
  bool enabled() const { return !directory.empty(); }
};

SnapshotFlags ParseSnapshotFlags(int argc, char** argv);

// The RunControl for one named run. Snapshots land in
// <flags.directory>/<run_name>/ so runs in one bench don't collide, and
// SIGINT/SIGTERM flush a final snapshot before stopping.
core::RunControl MakeRunControl(const SnapshotFlags& flags,
                                const std::string& run_name);

// RunBench with crash-safety. The run name is "<scheme>-s<seed>"; binaries
// that launch several runs per (scheme, seed) pair should build their own
// RunControl via MakeRunControl with a distinguishing name instead.
fl::RunResult RunBench(const core::Workload& workload,
                       const std::string& scheme,
                       const BenchRunOptions& options,
                       const SnapshotFlags& flags);

// Flight-recorder flags shared by the bench binaries:
//   --journal-out=DIR    record an event journal per run (obs/journal.h)
//                        under DIR/<run_name>.fjrn
//   --journal-sample=F   client-detail sampling rate in [0, 1] (default 1;
//                        reconciliation event kinds are never sampled)
// Journals are file outputs only — tables on stdout stay byte-identical.
struct JournalFlags {
  std::string directory;
  double sample_rate = 1.0;
  bool enabled() const { return !directory.empty(); }
  // Journal file path for one named run; empty when disabled.
  std::string PathFor(const std::string& run_name) const;
};

JournalFlags ParseJournalFlags(int argc, char** argv);

// RunBench with crash-safety and an optional flight recorder: the journal
// is attached with the resumed-from epoch (so --resume replays to a
// byte-equal journal) and written to journal_flags.PathFor(run_name). The
// run name defaults to "<scheme>-s<seed>"; binaries that launch several
// runs per (scheme, seed) pair use RunBenchNamed with a distinguishing
// name, exactly like MakeRunControl.
fl::RunResult RunBench(const core::Workload& workload,
                       const std::string& scheme,
                       const BenchRunOptions& options,
                       const SnapshotFlags& snapshot_flags,
                       const JournalFlags& journal_flags);
fl::RunResult RunBenchNamed(const core::Workload& workload,
                            const std::string& scheme,
                            const BenchRunOptions& options,
                            const SnapshotFlags& snapshot_flags,
                            const JournalFlags& journal_flags,
                            const std::string& run_name);

// Telemetry flags shared by the bench binaries:
//   --metrics-out=PATH  write a registry snapshot (JSON; .csv extension
//                       switches to CSV) when the bench finishes
//   --trace-out=PATH    record a Chrome trace for the whole run and write
//                       it at exit (open in Perfetto / chrome://tracing)
//   --log-level=LEVEL   debug | info | warning | error
// Nothing is printed to stdout, so instrumented runs keep byte-identical
// tables.
struct TelemetryFlags {
  std::string metrics_out;
  std::string trace_out;
};

TelemetryFlags ParseTelemetryFlags(int argc, char** argv);

// Robustness flags shared by the bench binaries:
//   --attack-mode=M      none | sign-flip | gaussian | scale | silent | nan
//   --attack-frac=F      fraction of clients Byzantine (persistent set)
//   --attack-scale=S     noise stddev / scale multiplier (default 8)
//   --aggregator=A       mean | trimmed-mean | median | krum | multi-krum
//   --robust-profile=P   off | screen | defense
// With none of these present `any` stays false and ApplyTo is a no-op, so
// existing bench tables remain byte-identical.
struct RobustFlags {
  net::AttackMode attack_mode = net::AttackMode::kNone;
  double attack_fraction = 0.0;
  double attack_scale = 8.0;
  fl::RobustConfig robust;
  bool any = false;

  void ApplyTo(BenchRunOptions* options) const;
};

RobustFlags ParseRobustFlags(int argc, char** argv);

// Applies --log-level and starts the trace recorder if --trace-out was
// given. Call once before the timed work.
void BeginTelemetry(const TelemetryFlags& flags);

// Writes the metrics/trace files requested by `flags` (logging any write
// failure) and stops the recorder.
void FinishTelemetry(const TelemetryFlags& flags);

// "a -> b (-37%)" helper for change-vs-baseline cells.
std::string PercentChange(double baseline, double value);

}  // namespace fedmigr::bench

#endif  // FEDMIGR_BENCH_COMMON_H_
