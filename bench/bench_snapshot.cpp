// Snapshot overhead at the Fig. 3 operating point: serialized size and
// per-epoch cost of the durable run snapshots (DESIGN.md §9), measured for
// the cheapest scheme (FedAvg, no policy state) and the heaviest (FedMigr:
// DDPG actor/critic/targets, Adam moments, prioritized replay).
//
// Each epoch the hook serializes the full trainer state, then atomically
// publishes the framed container (tmp + fsync + rename). Both halves are
// timed separately against the plain epoch time, which is what a user pays
// when enabling --snapshot-dir on a bench.
//
//   $ ./bench_snapshot [--epochs=N]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/file.h"
#include "util/serial.h"

namespace {

struct OverheadSample {
  double epoch_ms = 0.0;      // full epoch without any snapshot work
  double serialize_ms = 0.0;  // Trainer::SaveState into a byte buffer
  double publish_ms = 0.0;    // frame + tmp + fsync + rename
  size_t framed_bytes = 0;    // on-disk snapshot size
};

OverheadSample Measure(const fedmigr::core::Workload& workload,
                       const std::string& scheme, int epochs,
                       const std::string& dir) {
  using namespace fedmigr;
  bench::BenchRunOptions run;
  run.max_epochs = epochs;
  run.eval_every = epochs;  // keep evaluation out of the per-epoch time

  // Baseline: the same run with no snapshot work at all.
  fl::SchemeSetup baseline = bench::MakeBenchScheme(scheme, workload, run);
  fl::Trainer plain(baseline.config, &workload.data.train, workload.partition,
                    &workload.data.test, workload.topology, workload.devices,
                    workload.model_factory, std::move(baseline.policy));
  const obs::Stopwatch plain_watch;
  plain.Run();
  OverheadSample sample;
  sample.epoch_ms = plain_watch.ElapsedMs() / epochs;

  // Instrumented: serialize and publish once per epoch, timed separately.
  fl::SchemeSetup setup = bench::MakeBenchScheme(scheme, workload, run);
  fl::Trainer trainer(setup.config, &workload.data.train, workload.partition,
                      &workload.data.test, workload.topology,
                      workload.devices, workload.model_factory,
                      std::move(setup.policy));
  const std::string path = dir + "/" + scheme + ".fsnp";
  int saves = 0;
  trainer.SetEpochHook([&](const fl::Trainer& t, int) {
    obs::Stopwatch watch;
    util::ByteWriter writer;
    t.SaveState(&writer);
    sample.serialize_ms += watch.ElapsedMs();

    watch.Restart();
    const util::Status status =
        core::WriteSnapshotFile(path, writer.TakeBytes());
    sample.publish_ms += watch.ElapsedMs();
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot publish failed: %s\n",
                   status.ToString().c_str());
      std::exit(1);
    }
    ++saves;
    return true;
  });
  trainer.Run();
  sample.serialize_ms /= saves;
  sample.publish_ms /= saves;
  const auto framed = util::ReadFileBytes(path);
  sample.framed_bytes = framed.ok() ? framed.value().size() : 0;
  return sample;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedmigr;

  int epochs = 20;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::max(1, std::atoi(argv[i] + 9));
    }
  }

  // The Fig. 3 workload: C10 analogue, LAN-correlated non-IID, 10 clients.
  const core::Workload workload =
      bench::MakeBenchWorkload(bench::BenchWorkloadOptions{});
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir =
      std::string(tmp != nullptr ? tmp : "/tmp") + "/fedmigr-bench-snapshot";
  if (util::Status status = util::MakeDirectories(dir); !status.ok()) {
    std::fprintf(stderr, "cannot create %s: %s\n", dir.c_str(),
                 status.ToString().c_str());
    return 1;
  }

  std::printf(
      "Snapshot overhead per epoch (Fig. 3 workload, %d epochs/scheme)\n\n",
      epochs);
  util::TableWriter table({"scheme", "snapshot (KB)", "epoch (ms)",
                           "serialize (ms)", "publish (ms)",
                           "overhead (%)"});
  for (const char* scheme : {"fedavg", "fedmigr"}) {
    const OverheadSample s = Measure(workload, scheme, epochs, dir);
    table.AddRow();
    table.AddCell(scheme);
    table.AddCell(static_cast<double>(s.framed_bytes) / 1024.0, 1);
    table.AddCell(s.epoch_ms, 2);
    table.AddCell(s.serialize_ms, 3);
    table.AddCell(s.publish_ms, 3);
    table.AddCell(100.0 * (s.serialize_ms + s.publish_ms) / s.epoch_ms, 1);
  }
  table.Print(std::cout);
  std::printf(
      "\noverhead = (serialize + publish) / plain epoch time, snapshotting "
      "every epoch\n(the default bench cadence; --snapshot-every=N divides "
      "it by N).\n");
  return 0;
}
