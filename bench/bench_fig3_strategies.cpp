// Fig. 3 — Test accuracy of model training with FedMigr under three fixed
// migration strategies: cross-LAN, random, within-LAN.
//
// Paper setting: AlexNet/CIFAR-10, clients within a LAN share their data
// distribution, 600 epochs. Here: C10 analogue, LAN-shard partition, 150
// epochs, averaged over 3 seeds. Expected shape: migration toward foreign
// data (cross-LAN, and random — which in a 3-LAN topology is already ~70%
// cross-LAN) clearly beats within-LAN migration; the paper's additional
// cross-vs-random margin is inside seed noise at this scale.

#include <cstdio>
#include <iostream>
#include <map>
#include <vector>

#include "common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace fedmigr;

  // Crash-safe mode: pass --snapshot-dir=DIR (and later --resume) to make
  // the three 150-epoch runs survive interruption.
  const bench::SnapshotFlags snapshot_flags =
      bench::ParseSnapshotFlags(argc, argv);
  // --metrics-out / --trace-out / --log-level; file outputs only, the table
  // on stdout stays byte-identical.
  const bench::TelemetryFlags telemetry_flags =
      bench::ParseTelemetryFlags(argc, argv);
  // --journal-out=DIR records one flight-recorder journal per (strategy,
  // seed) run; --journal-sample thins client-detail events.
  const bench::JournalFlags journal_flags =
      bench::ParseJournalFlags(argc, argv);
  bench::BeginTelemetry(telemetry_flags);

  const char* strategies[] = {"crosslan", "randonly", "withinlan"};
  const uint64_t seeds[] = {5, 6, 7};
  constexpr int kEpochs = 150;
  constexpr int kEvalEvery = 25;

  // accuracy_sum[strategy][checkpoint], accumulated over seeds.
  std::map<std::string, std::vector<double>> accuracy_sum;
  for (const char* strategy : strategies) {
    accuracy_sum[strategy].assign(kEpochs / kEvalEvery, 0.0);
  }

  for (uint64_t seed : seeds) {
    bench::BenchWorkloadOptions workload_options;
    workload_options.partition = core::PartitionKind::kLanShard;
    workload_options.seed = seed;
    const core::Workload workload =
        bench::MakeBenchWorkload(workload_options);
    bench::BenchRunOptions run;
    run.max_epochs = kEpochs;
    run.eval_every = kEvalEvery;
    run.seed = seed;
    for (const char* strategy : strategies) {
      const fl::RunResult result = bench::RunBench(
          workload, strategy, run, snapshot_flags, journal_flags);
      if (result.interrupted) {
        // Partial history; the snapshot holds the progress. The table from
        // this invocation is incomplete — rerun with --resume.
        std::fprintf(stderr, "interrupted: %s seed %d — rerun with --resume\n",
                     strategy, static_cast<int>(seed));
        continue;
      }
      auto& sums = accuracy_sum[strategy];
      for (size_t c = 0; c < sums.size(); ++c) {
        const size_t epoch_index = (c + 1) * kEvalEvery - 1;
        sums[c] += result.history[epoch_index].test_accuracy;
      }
    }
  }

  const double num_seeds = static_cast<double>(std::size(seeds));
  std::printf(
      "Fig. 3 reproduction: accuracy vs epochs for three migration "
      "strategies\n(C10 analogue, LAN-correlated non-IID, agg every 5 "
      "epochs, mean of %d seeds)\n\n",
      static_cast<int>(num_seeds));
  util::TableWriter table({"epoch", "cross-LAN acc (%)", "random acc (%)",
                           "within-LAN acc (%)"});
  for (size_t c = 0; c < accuracy_sum["crosslan"].size(); ++c) {
    table.AddRow();
    table.AddCell(static_cast<int>((c + 1) * kEvalEvery));
    for (const char* strategy : strategies) {
      table.AddCell(100.0 * accuracy_sum[strategy][c] / num_seeds, 1);
    }
  }
  table.Print(std::cout);

  const double cross = accuracy_sum["crosslan"].back() / num_seeds;
  const double random = accuracy_sum["randonly"].back() / num_seeds;
  const double within = accuracy_sum["withinlan"].back() / num_seeds;
  std::printf(
      "\nfinal (mean): cross-LAN %.1f%% vs random %.1f%% vs within-LAN "
      "%.1f%%\npaper (600 ep): 63.6%% vs 60.7%% vs 56.2%% — decisive "
      "contrast: foreign-data migration (cross-LAN/random) beats "
      "within-LAN.\n",
      100 * cross, 100 * random, 100 * within);
  bench::FinishTelemetry(telemetry_flags);
  return 0;
}
