// Table III — Resource consumption (traffic and completion time) of the
// five schemes on the three models under the non-IID setting.
//
// Paper (fixed accuracy requirement): FedMigr/RandMigr consume far less
// bandwidth and time than FedSwap/FedProx/FedAvg; e.g., FedMigr cuts
// bandwidth by ~40-54% vs the server-centric schemes. Here: fixed target
// accuracy per dataset, costs measured at target (or at the epoch cap).

#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "util/csv.h"

namespace {

struct DatasetCase {
  const char* label;
  fedmigr::bench::BenchWorkloadOptions workload;
  fedmigr::bench::BenchRunOptions run;
};

}  // namespace

int main() {
  using namespace fedmigr;

  std::vector<DatasetCase> cases;
  {
    DatasetCase c10;
    c10.label = "C10-CNN";
    c10.run.max_epochs = 160;
    c10.run.eval_every = 10;
    c10.run.target_accuracy = 0.5;
    cases.push_back(c10);
  }
  {
    DatasetCase c100;
    c100.label = "C100-CNN";
    c100.workload.dataset = "c100";
    c100.workload.num_clients = 20;
    c100.workload.num_lans = 5;
    c100.workload.train_per_class = 8;
    c100.workload.signal = 1.0;
    c100.run.agg_period = 3;  // tighter sync horizon for the 100-way task
    c100.run.max_epochs = 140;
    c100.run.eval_every = 10;
    c100.run.target_accuracy = 0.35;
    cases.push_back(c100);
  }
  {
    DatasetCase imagenet;
    imagenet.label = "Res-ImageNet";
    imagenet.workload.dataset = "imagenet100";
    imagenet.workload.num_clients = 20;
    imagenet.workload.num_lans = 5;
    imagenet.workload.train_per_class = 10;
    imagenet.workload.signal = 1.0;
    imagenet.run.max_epochs = 160;
    imagenet.run.eval_every = 10;
    imagenet.run.target_accuracy = 0.55;
    cases.push_back(imagenet);
  }

  const char* schemes[] = {"fedavg", "fedswap", "randmigr", "fedprox",
                           "fedmigr"};

  std::printf(
      "Table III reproduction: traffic (MB) and simulated time (s) to the "
      "per-dataset target accuracy (non-IID). '>' marks runs that hit the "
      "epoch cap first.\n\n");
  util::TableWriter table({"Scheme", "C10 Traffic", "C10 Time",
                           "C100 Traffic", "C100 Time", "ImgNet Traffic",
                           "ImgNet Time"});
  std::vector<std::vector<std::string>> cells(
      std::size(schemes), std::vector<std::string>(cases.size() * 2));

  for (size_t d = 0; d < cases.size(); ++d) {
    const core::Workload workload =
        bench::MakeBenchWorkload(cases[d].workload);
    for (size_t s = 0; s < std::size(schemes); ++s) {
      const fl::RunResult result =
          bench::RunBench(workload, schemes[s], cases[d].run);
      const bool hit = result.reached_target;
      const double traffic_mb =
          (hit ? result.traffic_to_target_gb : result.traffic_gb) * 1000.0;
      const double time_s = hit ? result.time_to_target_s : result.time_s;
      const std::string prefix = hit ? "" : ">";
      cells[s][2 * d] = prefix + util::FormatDouble(traffic_mb, 1);
      cells[s][2 * d + 1] = prefix + util::FormatDouble(time_s, 0);
    }
  }

  for (size_t s = 0; s < std::size(schemes); ++s) {
    table.AddRow();
    table.AddCell(schemes[s]);
    for (const auto& cell : cells[s]) table.AddCell(cell);
  }
  table.Print(std::cout);
  std::printf(
      "\npaper shape: FedMigr and RandMigr cheapest in both traffic and "
      "time; FedAvg most expensive.\n");
  return 0;
}
