// Fig. 7 — Convergence on the testbed: loss/accuracy vs epoch for the five
// schemes, summarized as the number of epochs each scheme needs to reach a
// fixed accuracy requirement.
//
// Paper (CNN/CIFAR-10, 80% target): FedMigr 385 epochs < RandMigr 468 <
// FedSwap 679 < FedProx 884 < FedAvg 972. Here: C10 analogue with the
// testbed-style dominance partition; the expected shape is the same
// ordering.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace fedmigr;

  const bench::SnapshotFlags snapshot_flags =
      bench::ParseSnapshotFlags(argc, argv);

  bench::BenchWorkloadOptions workload_options;
  workload_options.partition = core::PartitionKind::kLanShard;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  bench::BenchRunOptions run;
  run.max_epochs = 200;
  run.eval_every = 5;
  run.target_accuracy = 0.55;

  std::printf(
      "Fig. 7 reproduction: epochs to reach %.0f%% accuracy "
      "(C10 analogue, LAN-correlated non-IID)\n\n",
      100 * run.target_accuracy);
  util::TableWriter table(
      {"Scheme", "epochs to target", "final acc (%)", "reached"});
  for (const char* scheme :
       {"fedmigr", "randmigr", "fedswap", "fedprox", "fedavg"}) {
    const fl::RunResult result =
        bench::RunBench(workload, scheme, run, snapshot_flags);
    table.AddRow();
    table.AddCell(scheme);
    table.AddCell(result.reached_target ? result.epochs_to_target
                                        : result.epochs_run);
    table.AddCell(100.0 * result.final_accuracy, 1);
    table.AddCell(result.reached_target ? "yes" : "no (cap)");
  }
  table.Print(std::cout);
  std::printf(
      "\npaper shape: FedMigr needs the fewest epochs "
      "(385 < 468 < 679 < 884 < 972).\n");
  return 0;
}
