// Infrastructure chaos — convergence under LAN partition storms,
// edge-server outages and fleet churn, with and without the round-progress
// watchdog.
//
// Not a figure of the paper: the paper assumes the infrastructure stays up,
// but its own setting (edge nodes that "dynamically join and leave",
// LAN-of-LANs behind WAN links) makes partitions, server outages and churn
// the realistic regime. This bench runs one cohort-scheduled fleet through
// a fixed chaos script — recurring partition storms that seal five of the
// six LANs (including one timed to cover the final aggregation), a periodic
// edge-server outage and 20% per-round fleet churn — under three
// conditions:
//
//   fault-free      no chaos, the calibration baseline
//   watchdog        chaos + quorum 0.5: a round commits only when half the
//                   expected uploads arrived; misses keep the last published
//                   aggregate and carry the survivors' updates forward
//   no-watchdog     chaos + quorum 0: every round commits, so a storm round
//                   aggregates whatever single LAN could reach the server
//                   and the global model lurches toward its label skew
//
// Expected shape (mean over three seeds): the watchdog run finishes within
// ~5 points of fault-free — it trades a handful of skipped rounds for an
// aggregate that is never a single-LAN artifact — while the no-watchdog run
// finishes far below its own best because the terminal storm poisons its
// final publish. The bench also reconciles the chaos ledger: every planned
// migration is completed, completed-via-fallback, or rolled back — nothing
// is silently lost.
//
// Flags: --epochs=N (default 120), --json-out=PATH (google-benchmark JSON,
// same schema family as BENCH_nn_ops.json), plus the shared telemetry
// flags.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "obs/journal.h"
#include "util/csv.h"
#include "util/file.h"
#include "util/logging.h"

namespace {

using namespace fedmigr;

struct Condition {
  const char* name;
  bool chaos;
  double quorum;
};

struct ChaosPoint {
  std::string name;
  fl::RunResult result;
  // Totals re-derived from the flight-recorder event streams (all seeds),
  // reconciled against the trainer's independently-serialized ChaosCounters
  // when --journal-out is given.
  obs::JournalSummary journal;
  int64_t epochs_run = 0;
};

// The chaos script: a two-epoch partition storm every 40 epochs (each
// seals five of the six LANs, a different survivor per storm) plus one
// timed to cover the final aggregation round, an edge-server outage every
// 35 epochs, and 20% per-round churn.
net::ChaosConfig MakeChaosScript(int num_lans, int epochs) {
  net::ChaosConfig chaos;
  int survivor = 0;
  for (int start = 10; start <= epochs; start += 40, ++survivor) {
    for (int lan = 0; lan < num_lans; ++lan) {
      if (lan != survivor % num_lans) chaos.partitions.push_back({lan, start, 2});
    }
  }
  for (int lan = 1; lan < num_lans; ++lan) {
    chaos.partitions.push_back({lan, epochs - 1, 2});
  }
  chaos.outage_period = 35;
  chaos.outage_phase = 5;
  chaos.outage_epochs = 1;
  chaos.churn_rate = 0.2;
  return chaos;
}

std::string JsonReport(const std::vector<ChaosPoint>& points, int epochs) {
  std::string out;
  out += "{\n  \"context\": {\n";
  out += "    \"executable\": \"bench_chaos\",\n";
  out += "    \"epochs\": " + std::to_string(epochs) + "\n";
  out += "  },\n  \"benchmarks\": [\n";
  for (size_t p = 0; p < points.size(); ++p) {
    const fl::RunResult& r = points[p].result;
    char buffer[1024];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\n"
        "      \"name\": \"chaos/%s\",\n"
        "      \"run_type\": \"iteration\",\n"
        "      \"iterations\": 1,\n"
        "      \"real_time\": %.6e,\n"
        "      \"cpu_time\": %.6e,\n"
        "      \"time_unit\": \"s\",\n"
        "      \"final_accuracy\": %.6f,\n"
        "      \"best_accuracy\": %.6f,\n"
        "      \"traffic_gb\": %.6f,\n"
        "      \"quorum_commits\": %lld,\n"
        "      \"quorum_misses\": %lld,\n"
        "      \"carryover_clients\": %lld,\n"
        "      \"churn_absences\": %lld,\n"
        "      \"churn_departures\": %lld,\n"
        "      \"migrations_planned\": %lld,\n"
        "      \"migrations_rolled_back\": %lld,\n"
        "      \"partitioned_transfers\": %lld,\n"
        "      \"outage_transfers\": %lld\n"
        "    }%s\n",
        points[p].name.c_str(), r.time_s, r.time_s, r.final_accuracy,
        r.best_accuracy, r.traffic_gb,
        static_cast<long long>(r.chaos.quorum_commits),
        static_cast<long long>(r.chaos.quorum_misses),
        static_cast<long long>(r.chaos.carryover_clients),
        static_cast<long long>(r.chaos.churn_absences),
        static_cast<long long>(r.chaos.churn_departures),
        static_cast<long long>(r.chaos.migrations_planned),
        static_cast<long long>(r.chaos.migrations_rolled_back),
        static_cast<long long>(r.faults.partitioned_transfers),
        static_cast<long long>(r.faults.outage_transfers),
        p + 1 < points.size() ? "," : "");
    out += buffer;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::TelemetryFlags telemetry_flags =
      bench::ParseTelemetryFlags(argc, argv);
  // --journal-out=DIR records one flight-recorder journal per (condition,
  // seed) run and adds a journal-vs-counters reconciliation table; without
  // the flag the output stays byte-identical.
  const bench::JournalFlags journal_flags =
      bench::ParseJournalFlags(argc, argv);
  bench::BeginTelemetry(telemetry_flags);

  int epochs = 120;
  std::string json_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_out = argv[i] + 11;
    }
  }
  FEDMIGR_CHECK_GT(epochs, 0);

  bench::BenchWorkloadOptions workload_options;
  workload_options.num_clients = 60;
  workload_options.num_lans = 6;
  workload_options.partition = core::PartitionKind::kLanShard;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  std::printf(
      "Infrastructure chaos: convergence under partition storms, server\n"
      "outages and 20%% fleet churn (C10 analogue, LAN-correlated non-IID,\n"
      "60 clients / 6 LANs, cohort 16, agg every 2, %d epochs, mean over 3\n"
      "seeds)\n\n",
      epochs);

  const Condition conditions[] = {
      {"fault-free", false, 0.0},
      {"watchdog", true, 0.5},
      {"no-watchdog", true, 0.0},
  };

  util::TableWriter table(
      {"condition", "acc (%)", "best (%)", "traffic (GB)", "up (GB)",
       "down (GB)", "commits", "misses", "carryover", "absent", "departed",
       "migr plan", "migr done", "rolled back", "part/out xfers"});
  const uint64_t seeds[] = {1, 2, 3};
  const int num_seeds = static_cast<int>(sizeof(seeds) / sizeof(seeds[0]));
  std::vector<ChaosPoint> points;
  for (const Condition& condition : conditions) {
    // Mean over seeds: the 250-sample synthetic test set quantizes accuracy
    // to 0.4-point steps, so single-seed deltas are mostly noise.
    fl::RunResult result;
    obs::JournalSummary journal_total;
    int64_t epochs_total = 0;
    for (uint64_t seed : seeds) {
      bench::BenchRunOptions run;
      run.max_epochs = epochs;
      run.agg_period = 2;
      run.eval_every = 10;
      run.cohort_size = 16;
      run.quorum_fraction = condition.quorum;
      run.seed = seed;
      if (condition.chaos) {
        run.fault.chaos = MakeChaosScript(workload_options.num_lans, epochs);
        run.fault.chaos.churn_seed = 101 + seed;
      }
      // All three conditions run the same (scheme, seed) pair, so the run
      // name carries the condition to keep the journal files apart.
      const std::string run_name =
          std::string(condition.name) + "-s" + std::to_string(seed);
      const fl::RunResult one =
          bench::RunBenchNamed(workload, "randmigr", run,
                               bench::SnapshotFlags(), journal_flags,
                               run_name);
      if (journal_flags.enabled()) {
        const util::Result<obs::JournalContents> contents =
            obs::ReadJournalFile(journal_flags.PathFor(run_name));
        FEDMIGR_CHECK(contents.ok())
            << "journal read failed for " << run_name << ": "
            << contents.status().ToString();
        FEDMIGR_CHECK(contents->has_summary)
            << "journal for " << run_name << " is missing its summary chunk";
        // Reconciliation half one: the summary chunk must re-derive exactly
        // from the event stream it summarizes.
        const obs::JournalSummary derived =
            obs::SummarizeJournalEvents(contents->events);
        FEDMIGR_CHECK_EQ(contents->summary.epochs_run, derived.epochs_run);
        FEDMIGR_CHECK_EQ(contents->summary.migrations_planned,
                         derived.migrations_planned);
        journal_total.epochs_run += derived.epochs_run;
        journal_total.migrations_planned += derived.migrations_planned;
        journal_total.migrations_completed += derived.migrations_completed;
        journal_total.migration_fallbacks += derived.migration_fallbacks;
        journal_total.migrations_rolled_back +=
            derived.migrations_rolled_back;
        journal_total.quorum_commits += derived.quorum_commits;
        journal_total.quorum_misses += derived.quorum_misses;
        journal_total.carryover_clients += derived.carryover_clients;
        journal_total.churn_absences += derived.churn_absences;
        journal_total.churn_departures += derived.churn_departures;
        journal_total.quarantines += derived.quarantines;
        journal_total.model_publishes += derived.model_publishes;
        epochs_total += one.epochs_run;
      }
      result.final_accuracy += one.final_accuracy / num_seeds;
      result.best_accuracy += one.best_accuracy / num_seeds;
      result.traffic_gb += one.traffic_gb / num_seeds;
      result.c2s_up_gb += one.c2s_up_gb / num_seeds;
      result.c2s_down_gb += one.c2s_down_gb / num_seeds;
      result.time_s += one.time_s / num_seeds;
      fl::ChaosCounters& c = result.chaos;
      const fl::ChaosCounters& o = one.chaos;
      c.migrations_planned += o.migrations_planned;
      c.migrations_completed += o.migrations_completed;
      c.migration_fallbacks += o.migration_fallbacks;
      c.migrations_rolled_back += o.migrations_rolled_back;
      c.quorum_commits += o.quorum_commits;
      c.quorum_misses += o.quorum_misses;
      c.carryover_clients += o.carryover_clients;
      c.churn_absences += o.churn_absences;
      c.churn_departures += o.churn_departures;
      result.faults.partitioned_transfers += one.faults.partitioned_transfers;
      result.faults.outage_transfers += one.faults.outage_transfers;
    }

    // The chaos ledger must reconcile: every planned migration either
    // completed (directly or via the server fallback) or rolled back to its
    // source — no orphaned lineages. The trainer CHECK-fails on an orphan,
    // so reaching this line already proves atomicity; the arithmetic proves
    // the counters tell the whole story.
    const fl::ChaosCounters& chaos = result.chaos;
    FEDMIGR_CHECK_EQ(chaos.migrations_planned,
                     chaos.migrations_completed + chaos.migration_fallbacks +
                         chaos.migrations_rolled_back)
        << "chaos ledger does not reconcile for " << condition.name;

    // Reconciliation half two: the journal's event-derived totals must
    // match the ChaosCounters the trainer accumulated independently.
    if (journal_flags.enabled()) {
      FEDMIGR_CHECK_EQ(journal_total.epochs_run, epochs_total)
          << "journal epochs diverge for " << condition.name;
      FEDMIGR_CHECK_EQ(journal_total.migrations_planned,
                       chaos.migrations_planned)
          << "journal migrations diverge for " << condition.name;
      FEDMIGR_CHECK_EQ(journal_total.migrations_completed,
                       chaos.migrations_completed);
      FEDMIGR_CHECK_EQ(journal_total.migration_fallbacks,
                       chaos.migration_fallbacks);
      FEDMIGR_CHECK_EQ(journal_total.migrations_rolled_back,
                       chaos.migrations_rolled_back);
      FEDMIGR_CHECK_EQ(journal_total.quorum_commits, chaos.quorum_commits);
      FEDMIGR_CHECK_EQ(journal_total.quorum_misses, chaos.quorum_misses);
      FEDMIGR_CHECK_EQ(journal_total.carryover_clients,
                       chaos.carryover_clients);
      FEDMIGR_CHECK_EQ(journal_total.churn_absences, chaos.churn_absences);
      FEDMIGR_CHECK_EQ(journal_total.churn_departures,
                       chaos.churn_departures);
    }

    table.AddRow();
    table.AddCell(condition.name);
    table.AddCell(100.0 * result.final_accuracy, 1);
    table.AddCell(100.0 * result.best_accuracy, 1);
    table.AddCell(result.traffic_gb, 3);
    table.AddCell(result.c2s_up_gb, 3);
    table.AddCell(result.c2s_down_gb, 3);
    table.AddCell(static_cast<int>(chaos.quorum_commits));
    table.AddCell(static_cast<int>(chaos.quorum_misses));
    table.AddCell(static_cast<int>(chaos.carryover_clients));
    table.AddCell(static_cast<int>(chaos.churn_absences));
    table.AddCell(static_cast<int>(chaos.churn_departures));
    table.AddCell(static_cast<int>(chaos.migrations_planned));
    table.AddCell(static_cast<int>(chaos.migrations_completed +
                                   chaos.migration_fallbacks));
    table.AddCell(static_cast<int>(chaos.migrations_rolled_back));
    table.AddCell(static_cast<int>(result.faults.partitioned_transfers +
                                   result.faults.outage_transfers));
    points.push_back({condition.name, result, journal_total, epochs_total});
  }
  table.Print(std::cout);

  if (journal_flags.enabled()) {
    // Every cell below was cross-checked twice before printing: summary
    // chunk vs event stream per run, event totals vs ChaosCounters per
    // condition (the FEDMIGR_CHECK_EQs above).
    std::printf(
        "\nFlight-recorder reconciliation (journal-derived totals, all "
        "seeds):\n\n");
    util::TableWriter recon(
        {"condition", "epochs", "publishes", "migr plan", "migr c2c",
         "fallback", "rolled back", "commits", "misses", "carryover",
         "absent", "departed", "vs counters"});
    for (const ChaosPoint& point : points) {
      const obs::JournalSummary& j = point.journal;
      recon.AddRow();
      recon.AddCell(point.name);
      recon.AddCell(static_cast<int>(j.epochs_run));
      recon.AddCell(static_cast<int>(j.model_publishes));
      recon.AddCell(static_cast<int>(j.migrations_planned));
      recon.AddCell(static_cast<int>(j.migrations_completed));
      recon.AddCell(static_cast<int>(j.migration_fallbacks));
      recon.AddCell(static_cast<int>(j.migrations_rolled_back));
      recon.AddCell(static_cast<int>(j.quorum_commits));
      recon.AddCell(static_cast<int>(j.quorum_misses));
      recon.AddCell(static_cast<int>(j.carryover_clients));
      recon.AddCell(static_cast<int>(j.churn_absences));
      recon.AddCell(static_cast<int>(j.churn_departures));
      recon.AddCell("ok");
    }
    recon.Print(std::cout);
  }

  const double fault_free = points[0].result.final_accuracy;
  const double watchdog = points[1].result.final_accuracy;
  const double unguarded = points[2].result.final_accuracy;
  std::printf(
      "\nReading: the watchdog run finishes %.1f points below fault-free "
      "(quorum\nmisses keep storm rounds from poisoning the aggregate); "
      "without the\nwatchdog the gap is %.1f points — the terminal storm "
      "publishes a\nsingle-LAN aggregate and the run ends %.1f points below "
      "its own best.\n",
      100.0 * (fault_free - watchdog), 100.0 * (fault_free - unguarded),
      100.0 * (points[2].result.best_accuracy - unguarded));

  if (!json_out.empty()) {
    const std::string report = JsonReport(points, epochs);
    const util::Status status = util::AtomicWriteFile(
        json_out, std::vector<uint8_t>(report.begin(), report.end()));
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", json_out.c_str(),
                   status.message().c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_out.c_str());
  }
  bench::FinishTelemetry(telemetry_flags);
  return 0;
}
