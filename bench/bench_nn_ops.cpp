// Supporting microbenchmarks for the NN substrate: the kernels whose cost
// dominates simulated training (matmul, conv2d forward/backward) plus model
// (de)serialization, which bounds how fast migrations can be simulated.

#include <benchmark/benchmark.h>

#include "nn/ops.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace {

using namespace fedmigr;

nn::Tensor RandomTensor(nn::Shape shape, uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const nn::Tensor a = RandomTensor({n, n}, 1);
  const nn::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const nn::Tensor input = RandomTensor({batch, 3, 8, 8}, 3);
  const nn::Tensor kernel = RandomTensor({8, 3, 5, 5}, 4);
  const nn::Tensor bias = RandomTensor({8}, 5);
  for (auto _ : state) {
    nn::Tensor out = nn::Conv2dForward(input, kernel, bias, 2);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(1)->Arg(16)->Arg(64);

void BM_Conv2dBackward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const nn::Tensor input = RandomTensor({batch, 3, 8, 8}, 6);
  const nn::Tensor kernel = RandomTensor({8, 3, 5, 5}, 7);
  const nn::Tensor bias = RandomTensor({8}, 8);
  const nn::Tensor grad = nn::Conv2dForward(input, kernel, bias, 2);
  for (auto _ : state) {
    nn::Tensor grad_input, grad_kernel, grad_bias;
    nn::Conv2dBackward(input, kernel, 2, grad, &grad_input, &grad_kernel,
                       &grad_bias);
    benchmark::DoNotOptimize(grad_input.data());
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(1)->Arg(16)->Arg(64);

void BM_C10NetForward(benchmark::State& state) {
  util::Rng rng(9);
  nn::Sequential model = nn::MakeC10Net(&rng);
  const nn::Tensor batch = RandomTensor({16, 3, 8, 8}, 10);
  for (auto _ : state) {
    nn::Tensor out = model.Forward(batch, /*training=*/false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_C10NetForward);

void BM_SerializeModel(benchmark::State& state) {
  util::Rng rng(11);
  const nn::Sequential model = nn::MakeResMini(&rng);
  for (auto _ : state) {
    auto bytes = nn::SerializeParams(model);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * model.ByteSize());
}
BENCHMARK(BM_SerializeModel);

void BM_DeserializeModel(benchmark::State& state) {
  util::Rng rng(12);
  nn::Sequential model = nn::MakeResMini(&rng);
  const auto bytes = nn::SerializeParams(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::DeserializeParams(bytes, &model).ok());
  }
  state.SetBytesProcessed(state.iterations() * model.ByteSize());
}
BENCHMARK(BM_DeserializeModel);

}  // namespace

BENCHMARK_MAIN();
