// Supporting microbenchmarks for the NN substrate: the kernels whose cost
// dominates simulated training (GEMM, im2col conv forward/backward) plus
// model (de)serialization, which bounds how fast migrations can be
// simulated.
//
// Each optimized kernel is benchmarked beside its retained *Naive reference
// so speedups are measured inside one binary under identical compiler
// flags. items_per_second reports FLOP/s (2 flops per multiply-accumulate).
// The *Threads variants exercise the intra-op ParallelForRange splitting.
// scripts/bench_nn_ops.sh runs this binary and records BENCH_nn_ops.json at
// the repo root so the perf trajectory is tracked PR over PR.

#include <benchmark/benchmark.h>

#include "nn/gemm.h"
#include "nn/ops.h"
#include "nn/serialize.h"
#include "nn/zoo.h"
#include "util/rng.h"

namespace {

using namespace fedmigr;

nn::Tensor RandomTensor(nn::Shape shape, uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.Normal());
  }
  return t;
}

// Pins the intra-op width for the duration of one benchmark.
class IntraOpGuard {
 public:
  explicit IntraOpGuard(int threads) : old_(nn::GetIntraOpThreads()) {
    nn::SetIntraOpThreads(threads);
  }
  ~IntraOpGuard() { nn::SetIntraOpThreads(old_); }

 private:
  int old_;
};

// ------------------------------------------------------------------ GEMM --

void BM_MatMul(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  IntraOpGuard guard(1);
  const nn::Tensor a = RandomTensor({n, n}, 1);
  const nn::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_MatMulNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const nn::Tensor a = RandomTensor({n, n}, 1);
  const nn::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMulNaive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMulNaive)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_MatMulTransB(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  IntraOpGuard guard(1);
  const nn::Tensor a = RandomTensor({n, n}, 1);
  const nn::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMulTransB(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMulTransB)->Arg(128)->Arg(512);

void BM_MatMulTransBNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const nn::Tensor a = RandomTensor({n, n}, 1);
  const nn::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMulTransBNaive(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMulTransBNaive)->Arg(128)->Arg(512);

// Intra-op scaling: row-panels of the 512x512 product split across the
// pool (grain 64 -> 8 chunks).
void BM_MatMulThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  IntraOpGuard guard(threads);
  const int n = 512;
  const nn::Tensor a = RandomTensor({n, n}, 1);
  const nn::Tensor b = RandomTensor({n, n}, 2);
  for (auto _ : state) {
    nn::Tensor c = nn::MatMul(a, b);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * int64_t{n} * n * n);
}
BENCHMARK(BM_MatMulThreads)->Arg(1)->Arg(2)->Arg(4);

// ------------------------------------------------------------------ conv --
// The two conv layers of the zoo C10/C100 CNN: 3->8 on 8x8 and 8->16 on
// 4x4, both 5x5 kernels with pad 2.

struct ConvShape {
  int cin, cout, hw;
};

constexpr ConvShape kZooConv[2] = {{3, 8, 8}, {8, 16, 4}};

int64_t ConvForwardFlops(int batch, const ConvShape& s) {
  return 2 * int64_t{batch} * s.cout * s.hw * s.hw * s.cin * 5 * 5;
}

void RunConvForward(benchmark::State& state, bool naive) {
  const int batch = static_cast<int>(state.range(0));
  const ConvShape shape = kZooConv[static_cast<size_t>(state.range(1))];
  IntraOpGuard guard(1);
  const nn::Tensor input =
      RandomTensor({batch, shape.cin, shape.hw, shape.hw}, 3);
  const nn::Tensor kernel = RandomTensor({shape.cout, shape.cin, 5, 5}, 4);
  const nn::Tensor bias = RandomTensor({shape.cout}, 5);
  for (auto _ : state) {
    nn::Tensor out = naive ? nn::Conv2dForwardNaive(input, kernel, bias, 2)
                           : nn::Conv2dForward(input, kernel, bias, 2);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * ConvForwardFlops(batch, shape));
}

void BM_Conv2dForward(benchmark::State& state) {
  RunConvForward(state, /*naive=*/false);
}
BENCHMARK(BM_Conv2dForward)
    ->ArgsProduct({{1, 16, 64}, {0, 1}})
    ->ArgNames({"batch", "layer"});

void BM_Conv2dForwardNaive(benchmark::State& state) {
  RunConvForward(state, /*naive=*/true);
}
BENCHMARK(BM_Conv2dForwardNaive)
    ->ArgsProduct({{1, 16, 64}, {0, 1}})
    ->ArgNames({"batch", "layer"});

void RunConvBackward(benchmark::State& state, bool naive) {
  const int batch = static_cast<int>(state.range(0));
  const ConvShape shape = kZooConv[static_cast<size_t>(state.range(1))];
  IntraOpGuard guard(1);
  const nn::Tensor input =
      RandomTensor({batch, shape.cin, shape.hw, shape.hw}, 6);
  const nn::Tensor kernel = RandomTensor({shape.cout, shape.cin, 5, 5}, 7);
  const nn::Tensor bias = RandomTensor({shape.cout}, 8);
  const nn::Tensor grad = nn::Conv2dForward(input, kernel, bias, 2);
  for (auto _ : state) {
    nn::Tensor grad_input, grad_kernel, grad_bias;
    if (naive) {
      nn::Conv2dBackwardNaive(input, kernel, 2, grad, &grad_input,
                              &grad_kernel, &grad_bias);
    } else {
      nn::Conv2dBackward(input, kernel, 2, grad, &grad_input, &grad_kernel,
                         &grad_bias);
    }
    benchmark::DoNotOptimize(grad_input.data());
  }
  // Two GEMMs (input grad + kernel grad), each the forward's volume.
  state.SetItemsProcessed(state.iterations() * 2 *
                          ConvForwardFlops(batch, shape));
}

void BM_Conv2dBackward(benchmark::State& state) {
  RunConvBackward(state, /*naive=*/false);
}
BENCHMARK(BM_Conv2dBackward)
    ->ArgsProduct({{1, 16, 64}, {0, 1}})
    ->ArgNames({"batch", "layer"});

void BM_Conv2dBackwardNaive(benchmark::State& state) {
  RunConvBackward(state, /*naive=*/true);
}
BENCHMARK(BM_Conv2dBackwardNaive)
    ->ArgsProduct({{1, 16, 64}, {0, 1}})
    ->ArgNames({"batch", "layer"});

// Intra-op scaling for conv: one image per chunk across the batch.
void BM_Conv2dForwardThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  IntraOpGuard guard(threads);
  const int batch = 64;
  const ConvShape shape = kZooConv[0];
  const nn::Tensor input =
      RandomTensor({batch, shape.cin, shape.hw, shape.hw}, 3);
  const nn::Tensor kernel = RandomTensor({shape.cout, shape.cin, 5, 5}, 4);
  const nn::Tensor bias = RandomTensor({shape.cout}, 5);
  for (auto _ : state) {
    nn::Tensor out = nn::Conv2dForward(input, kernel, bias, 2);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * ConvForwardFlops(batch, shape));
}
BENCHMARK(BM_Conv2dForwardThreads)->Arg(1)->Arg(2)->Arg(4);

// ------------------------------------------------------------ end to end --

void BM_C10NetForward(benchmark::State& state) {
  IntraOpGuard guard(1);
  util::Rng rng(9);
  nn::Sequential model = nn::MakeC10Net(&rng);
  const nn::Tensor batch = RandomTensor({16, 3, 8, 8}, 10);
  for (auto _ : state) {
    nn::Tensor out = model.Forward(batch, /*training=*/false);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_C10NetForward);

void BM_SerializeModel(benchmark::State& state) {
  util::Rng rng(11);
  const nn::Sequential model = nn::MakeResMini(&rng);
  for (auto _ : state) {
    auto bytes = nn::SerializeParams(model);
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetBytesProcessed(state.iterations() * model.ByteSize());
}
BENCHMARK(BM_SerializeModel);

void BM_DeserializeModel(benchmark::State& state) {
  util::Rng rng(12);
  nn::Sequential model = nn::MakeResMini(&rng);
  const auto bytes = nn::SerializeParams(model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nn::DeserializeParams(bytes, &model).ok());
  }
  state.SetBytesProcessed(state.iterations() * model.ByteSize());
}
BENCHMARK(BM_DeserializeModel);

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext("gemm_kernel", fedmigr::nn::GemmKernelName());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
