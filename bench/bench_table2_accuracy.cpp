// Table II — Test accuracy of the five schemes on the three models under
// IID and non-IID data.
//
// Paper (1000 epochs): under non-IID, FedMigr > RandMigr > FedSwap >
// FedProx > FedAvg on all three models; under IID all five are close.
// Here: the three synthetic analogues, scaled epochs. c100/imagenet use
// fewer samples and epochs so the full table stays minutes-scale.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "util/csv.h"

namespace {

struct DatasetCase {
  const char* label;
  fedmigr::bench::BenchWorkloadOptions workload;
  fedmigr::bench::BenchRunOptions run;
};

}  // namespace

int main() {
  using namespace fedmigr;

  std::vector<DatasetCase> cases;
  {
    DatasetCase c10;
    c10.label = "C10-CNN";
    c10.run.max_epochs = 120;
    c10.run.eval_every = 30;
    cases.push_back(c10);
  }
  {
    DatasetCase c100;
    c100.label = "C100-CNN";
    c100.workload.dataset = "c100";
    c100.workload.num_clients = 20;
    c100.workload.num_lans = 5;
    c100.workload.train_per_class = 8;
    c100.workload.signal = 1.0;
    c100.run.agg_period = 3;  // tighter sync horizon for the 100-way task
    c100.run.max_epochs = 140;
    c100.run.eval_every = 70;
    cases.push_back(c100);
  }
  {
    DatasetCase imagenet;
    imagenet.label = "Res-ImageNet";
    imagenet.workload.dataset = "imagenet100";
    imagenet.workload.num_clients = 20;
    imagenet.workload.num_lans = 5;
    imagenet.workload.train_per_class = 10;
    imagenet.workload.signal = 1.0;
    imagenet.run.max_epochs = 160;
    imagenet.run.eval_every = 80;
    cases.push_back(imagenet);
  }

  const char* schemes[] = {"fedavg", "fedswap", "randmigr", "fedprox",
                           "fedmigr"};

  std::printf(
      "Table II reproduction: test accuracy (%%) of five schemes, three "
      "models, IID vs non-IID\n\n");
  util::TableWriter table({"Scheme", "C10 IID", "C10 non-IID", "C100 IID",
                           "C100 non-IID", "ImgNet IID", "ImgNet non-IID"});
  std::vector<std::vector<double>> accuracy(
      std::size(schemes), std::vector<double>(cases.size() * 2, 0.0));

  for (size_t d = 0; d < cases.size(); ++d) {
    for (int iid = 1; iid >= 0; --iid) {
      bench::BenchWorkloadOptions workload_options = cases[d].workload;
      workload_options.partition = iid ? core::PartitionKind::kIid
                                       : core::PartitionKind::kLanShard;
      const core::Workload workload =
          bench::MakeBenchWorkload(workload_options);
      bench::BenchRunOptions run = cases[d].run;
      if (iid) {
        // IID converges faster and the claim is only "all schemes close";
        // a shorter horizon keeps the table minutes-scale.
        run.max_epochs = (2 * run.max_epochs) / 3;
        run.eval_every = run.max_epochs;
      }
      for (size_t s = 0; s < std::size(schemes); ++s) {
        const fl::RunResult result =
            bench::RunBench(workload, schemes[s], run);
        accuracy[s][2 * d + (iid ? 0 : 1)] = result.final_accuracy;
      }
    }
  }

  for (size_t s = 0; s < std::size(schemes); ++s) {
    table.AddRow();
    table.AddCell(schemes[s]);
    for (double acc : accuracy[s]) table.AddCell(100.0 * acc, 1);
  }
  table.Print(std::cout);
  std::printf(
      "\npaper shape: IID columns nearly equal; non-IID columns ordered "
      "FedMigr > RandMigr > FedSwap > FedProx > FedAvg\n");
  return 0;
}
