// Fig. 11 — Bandwidth consumption and completion time vs non-IID level.
//
// Paper (CNN/CIFAR-10, training to a fixed requirement): both costs grow
// with the non-IID level for every scheme, but FedMigr's costs grow the
// slowest — at level 0.6 it needs ~40-60% less time than the baselines.
// Here: dominance levels p on the C10 analogue, costs measured at a fixed
// target accuracy (epoch-capped).

#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  const char* schemes[] = {"fedmigr", "randmigr", "fedswap", "fedprox",
                           "fedavg"};
  const double levels[] = {0.2, 0.6};

  std::vector<core::Workload> workloads;
  for (double p : levels) {
    bench::BenchWorkloadOptions workload_options;
    workload_options.partition = core::PartitionKind::kDominance;
    workload_options.partition_param = p;
    workloads.push_back(bench::MakeBenchWorkload(workload_options));
  }

  bench::BenchRunOptions run;
  run.max_epochs = 180;
  run.eval_every = 10;
  run.target_accuracy = 0.5;

  std::printf(
      "Fig. 11 reproduction: traffic (MB) and simulated time (s) to reach "
      "%.0f%% accuracy vs non-IID level ('>' = hit epoch cap)\n\n",
      100 * run.target_accuracy);
  util::TableWriter table({"Scheme", "p=0.2 traffic", "p=0.2 time",
                           "p=0.6 traffic", "p=0.6 time"});
  for (const char* scheme : schemes) {
    table.AddRow();
    table.AddCell(scheme);
    for (const auto& workload : workloads) {
      const fl::RunResult result = bench::RunBench(workload, scheme, run);
      const bool hit = result.reached_target;
      const double traffic_mb =
          (hit ? result.traffic_to_target_gb : result.traffic_gb) * 1000.0;
      const double time_s = hit ? result.time_to_target_s : result.time_s;
      const std::string prefix = hit ? "" : ">";
      table.AddCell(prefix + util::FormatDouble(traffic_mb, 1));
      table.AddCell(prefix + util::FormatDouble(time_s, 0));
    }
  }
  table.Print(std::cout);
  std::printf(
      "\npaper shape: costs grow with the non-IID level for all schemes; "
      "FedMigr grows slowest and is cheapest at every level.\n");
  return 0;
}
