// Fig. 6 — Scalability of decision making: time to produce one migration
// policy by (a) solving the relaxed convex program ("S-COP", projected-
// gradient QP + Hungarian rounding) vs (b) DRL actor inference, as the
// number of clients grows from 10 to 100.
//
// Paper: DRL inference time grows much more slowly than S-COP. This bench
// uses google-benchmark for the timing and prints both series.

#include <benchmark/benchmark.h>

#include "net/topology.h"
#include "opt/flmm.h"
#include "rl/agent.h"
#include "rl/state.h"
#include "util/rng.h"

namespace {

using namespace fedmigr;

// Random divergence matrix + topology of the given size.
struct Problem {
  explicit Problem(int k)
      : topology(net::TopologyConfig{
            .lan_of = net::EvenLanAssignment(k, std::max(1, k / 4))}),
        gain(static_cast<size_t>(k),
             std::vector<double>(static_cast<size_t>(k), 0.0)) {
    util::Rng rng(static_cast<uint64_t>(k));
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        if (i != j) {
          gain[static_cast<size_t>(i)][static_cast<size_t>(j)] =
              rng.Uniform(0.0, 2.0);
        }
      }
    }
  }
  net::Topology topology;
  std::vector<std::vector<double>> gain;
};

void BM_SCOP(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Problem problem(k);
  for (auto _ : state) {
    const opt::FlmmPlan plan =
        opt::SolveFlmm(problem.gain, problem.topology, 100000, {});
    benchmark::DoNotOptimize(plan.destination.data());
  }
}
BENCHMARK(BM_SCOP)->Arg(10)->Arg(20)->Arg(40)->Arg(60)->Arg(80)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_DrlInference(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Problem problem(k);
  rl::DdpgAgent agent(rl::AgentConfig{});
  util::Rng rng(7);

  fl::PolicyContext ctx;
  ctx.topology = &problem.topology;
  ctx.model_bytes = 100000;
  ctx.client_distributions = &problem.gain;  // only sizes matter here
  ctx.model_distributions = &problem.gain;
  ctx.budget = nullptr;
  net::Budget budget;
  ctx.budget = &budget;

  for (auto _ : state) {
    // One full policy round: score all K sources' candidate rows and pick.
    std::vector<bool> mask(static_cast<size_t>(k), true);
    int total = 0;
    for (int src = 0; src < k; ++src) {
      const auto rows = rl::CandidateRows(ctx, problem.gain, src);
      total += agent.SelectAction(rows, mask, /*explore=*/false, &rng);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_DrlInference)
    ->Arg(10)->Arg(20)->Arg(40)->Arg(60)->Arg(80)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
