// Fig. 6 extension — fleet-scale trainer scalability.
//
// The paper's Fig. 6 asks how decision making scales with the client count;
// this bench asks the same of the whole simulator. It sweeps the fleet size
// K (default 1k / 10k / 100k; --clients goes to 10^6) at a fixed cohort
// size C and measures what the sharded CoW client layer promises:
//   - trainer construction cost stays O(C), not O(K);
//   - seconds per epoch tracks C, not K;
//   - peak RSS stays bounded (materialized models ≈ touched cohorts, every
//     idle client aliases the one aggregate block).
//
// Output: a human-readable table on stdout and, with --json-out, a
// google-benchmark-shaped JSON file (same schema as BENCH_nn_ops.json) so
// CI can track the trajectory PR over PR.
//
// Flags (both --flag=value and --flag value forms):
//   --clients=LIST   comma-separated fleet sizes (default 1000,10000,100000)
//   --cohort=C       cohort size per round (default 100)
//   --epochs=N       epochs per measured run (default 3)
//   --agg-period=N   aggregation period (default 3: one full round + extra)
//   --json-out=PATH  write the google-benchmark JSON here
//   --decision-time  run the paper's original Fig. 6 exhibit instead:
//                    time-to-one-migration-plan for S-COP (relaxed QP +
//                    Hungarian rounding) vs DRL actor inference, K=10..100

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "data/partition.h"
#include "data/synthetic.h"
#include "fl/policies.h"
#include "fl/trainer.h"
#include "net/device.h"
#include "net/topology.h"
#include "nn/zoo.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "opt/flmm.h"
#include "rl/agent.h"
#include "rl/state.h"
#include "util/file.h"
#include "util/logging.h"
#include "util/rng.h"

namespace {

using namespace fedmigr;

struct ScalabilityFlags {
  std::vector<int64_t> clients = {1000, 10000, 100000};
  int cohort = 100;
  int epochs = 3;
  int agg_period = 3;
  bool decision_time = false;
  std::string json_out;
};

// Accepts --flag=value and --flag value.
bool FlagValue(int argc, char** argv, int* i, const char* name,
               std::string* value) {
  const std::string arg = argv[*i];
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) == 0) {
    *value = arg.substr(prefix.size());
    return true;
  }
  if (arg == name && *i + 1 < argc) {
    *value = argv[++*i];
    return true;
  }
  return false;
}

ScalabilityFlags ParseFlags(int argc, char** argv) {
  ScalabilityFlags flags;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (FlagValue(argc, argv, &i, "--clients", &value)) {
      flags.clients.clear();
      size_t start = 0;
      while (start < value.size()) {
        size_t comma = value.find(',', start);
        if (comma == std::string::npos) comma = value.size();
        flags.clients.push_back(
            std::stoll(value.substr(start, comma - start)));
        start = comma + 1;
      }
    } else if (FlagValue(argc, argv, &i, "--cohort", &value)) {
      flags.cohort = std::stoi(value);
    } else if (FlagValue(argc, argv, &i, "--epochs", &value)) {
      flags.epochs = std::stoi(value);
    } else if (FlagValue(argc, argv, &i, "--agg-period", &value)) {
      flags.agg_period = std::stoi(value);
    } else if (FlagValue(argc, argv, &i, "--json-out", &value)) {
      flags.json_out = value;
    } else if (std::string(argv[i]) == "--decision-time") {
      flags.decision_time = true;
    }
  }
  FEDMIGR_CHECK(!flags.clients.empty());
  FEDMIGR_CHECK(flags.cohort > 0);
  FEDMIGR_CHECK(flags.epochs > 0);
  return flags;
}

struct SweepPoint {
  int64_t clients = 0;
  int cohort = 0;
  double construct_s = 0.0;
  double per_epoch_s = 0.0;
  double run_s = 0.0;
  int materialized = 0;
  int64_t peak_rss_bytes = 0;
};

// One measured run at fleet size K. The dataset is generated once and
// shared; every client trains on a small wrapped slice of it, so fleet size
// scales the *simulated* population without scaling the sample store.
SweepPoint RunPoint(const data::TrainTest& data, int64_t clients_i64,
                    const ScalabilityFlags& flags) {
  const int k = static_cast<int>(clients_i64);
  const int samples_per_client = 8;
  const int n = data.train.size();

  SweepPoint point;
  point.clients = clients_i64;
  point.cohort = std::min<int>(flags.cohort, k);

  data::Partition partition(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    auto& slice = partition[static_cast<size_t>(i)];
    slice.reserve(samples_per_client);
    for (int j = 0; j < samples_per_client; ++j) {
      slice.push_back(static_cast<int>(
          (static_cast<int64_t>(i) * samples_per_client + j) % n));
    }
  }

  net::TopologyConfig tc;
  tc.lan_of = net::EvenLanAssignment(k, std::max(1, k / 1000));
  fl::TrainerConfig config;
  config.scheme_name = "scalability";
  config.max_epochs = flags.epochs;
  config.agg_period = flags.agg_period;
  config.cohort_size = point.cohort;
  config.eval_every = 0;  // measurement of the simulator, not the model
  config.batch_size = 8;
  config.seed = 11;

  const obs::Stopwatch construct_watch;
  fl::Trainer trainer(config, &data.train, std::move(partition), &data.test,
                      net::Topology(std::move(tc)), net::MakeUniformFleet(k),
                      [](util::Rng* rng) { return nn::MakeModelByName("c10", rng); },
                      std::make_unique<fl::RandomMigrationPolicy>());
  point.construct_s = construct_watch.ElapsedSeconds();

  const obs::Stopwatch run_watch;
  const fl::RunResult result = trainer.Run();
  point.run_s = run_watch.ElapsedSeconds();
  point.per_epoch_s = point.run_s / std::max(1, result.epochs_run);
  point.materialized = trainer.num_materialized_clients();
  point.peak_rss_bytes = obs::PeakRssBytes();
  return point;
}

// --- The paper's original Fig. 6: decision-time scalability -----------------

// Random divergence matrix + topology of the given size.
struct DecisionProblem {
  explicit DecisionProblem(int k)
      : topology(net::TopologyConfig{
            .lan_of = net::EvenLanAssignment(k, std::max(1, k / 4))}),
        gain(static_cast<size_t>(k),
             std::vector<double>(static_cast<size_t>(k), 0.0)) {
    util::Rng rng(static_cast<uint64_t>(k));
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        if (i != j) {
          gain[static_cast<size_t>(i)][static_cast<size_t>(j)] =
              rng.Uniform(0.0, 2.0);
        }
      }
    }
  }
  net::Topology topology;
  std::vector<std::vector<double>> gain;
};

struct DecisionPoint {
  int clients = 0;
  double scop_ms = 0.0;
  double drl_ms = 0.0;
};

// Per-iteration wall time, repeated until ~100 ms total (min 3 iterations),
// reported as the median — robust to a stray scheduler hiccup without
// needing a benchmark framework.
template <typename Fn>
double MedianIterationMs(const Fn& fn) {
  std::vector<double> samples;
  double total = 0.0;
  while (samples.size() < 3 || (total < 0.1 && samples.size() < 200)) {
    const obs::Stopwatch watch;
    fn();
    const double elapsed = watch.ElapsedSeconds();
    samples.push_back(elapsed);
    total += elapsed;
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2] * 1e3;
}

std::vector<DecisionPoint> RunDecisionTimeSweep() {
  std::printf(
      "Fig. 6: decision-time scalability — one migration plan for K "
      "clients\n(S-COP = relaxed QP + Hungarian rounding; DRL = actor "
      "inference over all\nK x K candidate rows)\n\n");
  std::printf("%12s %14s %14s\n", "clients", "S-COP (ms)", "DRL (ms)");

  std::vector<DecisionPoint> points;
  for (const int k : {10, 20, 40, 60, 80, 100}) {
    DecisionProblem problem(k);
    DecisionPoint point;
    point.clients = k;

    point.scop_ms = MedianIterationMs([&] {
      const opt::FlmmPlan plan =
          opt::SolveFlmm(problem.gain, problem.topology, 100000, {});
      FEDMIGR_CHECK(static_cast<int>(plan.destination.size()) == k);
    });

    rl::DdpgAgent agent(rl::AgentConfig{});
    util::Rng rng(7);
    net::Budget budget;
    fl::PolicyContext ctx;
    ctx.topology = &problem.topology;
    ctx.model_bytes = 100000;
    ctx.client_distributions = &problem.gain;  // only the shapes matter here
    ctx.model_distributions = &problem.gain;
    ctx.budget = &budget;
    point.drl_ms = MedianIterationMs([&] {
      // One full policy round: score all K sources' candidate rows and pick.
      std::vector<bool> mask(static_cast<size_t>(k), true);
      int total = 0;
      for (int src = 0; src < k; ++src) {
        const auto rows = rl::CandidateRows(ctx, problem.gain, src);
        total += agent.SelectAction(rows, mask, /*explore=*/false, &rng);
      }
      FEDMIGR_CHECK(total >= 0);
    });

    std::printf("%12d %14.3f %14.3f\n", point.clients, point.scop_ms,
                point.drl_ms);
    std::fflush(stdout);
    points.push_back(point);
  }
  std::printf(
      "\nexpectation: the convex solver's cost grows much faster with K "
      "than\nactor inference — the paper's argument for the learned "
      "policy.\n");
  return points;
}

std::string DecisionJsonReport(const std::vector<DecisionPoint>& points) {
  std::string out;
  out += "{\n  \"context\": {\n";
  out += "    \"executable\": \"bench_fig6_scalability\",\n";
  out += "    \"mode\": \"decision_time\"\n";
  out += "  },\n  \"benchmarks\": [\n";
  for (size_t p = 0; p < points.size(); ++p) {
    const DecisionPoint& point = points[p];
    char buffer[512];
    std::snprintf(buffer, sizeof(buffer),
                  "    {\n"
                  "      \"name\": \"decision_time/scop/clients:%d\",\n"
                  "      \"run_type\": \"iteration\",\n"
                  "      \"iterations\": 1,\n"
                  "      \"real_time\": %.6e,\n"
                  "      \"cpu_time\": %.6e,\n"
                  "      \"time_unit\": \"ms\"\n"
                  "    },\n"
                  "    {\n"
                  "      \"name\": \"decision_time/drl/clients:%d\",\n"
                  "      \"run_type\": \"iteration\",\n"
                  "      \"iterations\": 1,\n"
                  "      \"real_time\": %.6e,\n"
                  "      \"cpu_time\": %.6e,\n"
                  "      \"time_unit\": \"ms\"\n"
                  "    }%s\n",
                  point.clients, point.scop_ms, point.scop_ms, point.clients,
                  point.drl_ms, point.drl_ms,
                  p + 1 < points.size() ? "," : "");
    out += buffer;
  }
  out += "  ]\n}\n";
  return out;
}

std::string JsonReport(const std::vector<SweepPoint>& points,
                       const ScalabilityFlags& flags) {
  std::string out;
  out += "{\n  \"context\": {\n";
  out += "    \"executable\": \"bench_fig6_scalability\",\n";
  out += "    \"epochs\": " + std::to_string(flags.epochs) + ",\n";
  out += "    \"agg_period\": " + std::to_string(flags.agg_period) + "\n";
  out += "  },\n  \"benchmarks\": [\n";
  for (size_t p = 0; p < points.size(); ++p) {
    const SweepPoint& point = points[p];
    char buffer[512];
    std::snprintf(
        buffer, sizeof(buffer),
        "    {\n"
        "      \"name\": \"scalability/clients:%lld/cohort:%d\",\n"
        "      \"run_type\": \"iteration\",\n"
        "      \"iterations\": %d,\n"
        "      \"real_time\": %.6e,\n"
        "      \"cpu_time\": %.6e,\n"
        "      \"time_unit\": \"s\",\n"
        "      \"construct_s\": %.6e,\n"
        "      \"materialized_models\": %d,\n"
        "      \"peak_rss_bytes\": %lld\n"
        "    }%s\n",
        static_cast<long long>(point.clients), point.cohort, flags.epochs,
        point.per_epoch_s, point.per_epoch_s, point.construct_s,
        point.materialized, static_cast<long long>(point.peak_rss_bytes),
        p + 1 < points.size() ? "," : "");
    out += buffer;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const ScalabilityFlags flags = ParseFlags(argc, argv);

  if (flags.decision_time) {
    const std::vector<DecisionPoint> points = RunDecisionTimeSweep();
    if (!flags.json_out.empty()) {
      const std::string report = DecisionJsonReport(points);
      const util::Status status = util::AtomicWriteFile(
          flags.json_out, std::vector<uint8_t>(report.begin(), report.end()));
      if (!status.ok()) {
        std::fprintf(stderr, "failed to write %s: %s\n",
                     flags.json_out.c_str(), status.message().c_str());
        return 1;
      }
      std::printf("wrote %s\n", flags.json_out.c_str());
    }
    return 0;
  }

  // Small shared synthetic store; the fleet wraps around it.
  data::SyntheticSpec spec = data::C10Spec();
  spec.train_per_class = 60;
  const data::TrainTest data = data::GenerateSynthetic(spec);

  std::printf(
      "Fig. 6 extension: simulator scalability in fleet size K\n"
      "(cohort C = %d per round, %d epochs, agg every %d; sharded CoW "
      "client store)\n\n",
      flags.cohort, flags.epochs, flags.agg_period);
  std::printf(
      "%12s %8s %14s %14s %14s %14s\n", "clients", "cohort", "construct (s)",
      "sec/epoch", "materialized", "peak RSS (MB)");

  std::vector<SweepPoint> points;
  for (int64_t clients : flags.clients) {
    const SweepPoint point = RunPoint(data, clients, flags);
    std::printf("%12lld %8d %14.3f %14.3f %14d %14.1f\n",
                static_cast<long long>(point.clients), point.cohort,
                point.construct_s, point.per_epoch_s, point.materialized,
                static_cast<double>(point.peak_rss_bytes) / 1e6);
    std::fflush(stdout);
    points.push_back(point);
  }

  std::printf(
      "\nexpectation: sec/epoch and materialized models track the cohort "
      "size,\nnot the fleet size; idle clients alias one shared aggregate "
      "block.\n");

  if (!flags.json_out.empty()) {
    const std::string report = JsonReport(points, flags);
    const util::Status status = util::AtomicWriteFile(
        flags.json_out, std::vector<uint8_t>(report.begin(), report.end()));
    if (!status.ok()) {
      std::fprintf(stderr, "failed to write %s: %s\n", flags.json_out.c_str(),
                   status.message().c_str());
      return 1;
    }
    std::printf("wrote %s\n", flags.json_out.c_str());
  }
  return 0;
}
