// Table I — Completion time and traffic consumption of FedAvg vs FedMigr
// at a target accuracy.
//
// Paper: target 80% on CIFAR-10; FedMigr cuts time by ~53% and traffic by
// ~47%. Here: C10 analogue with a target calibrated to the synthetic task;
// the reproduction target is the roughly-half cost, not the absolute
// numbers.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  bench::BenchWorkloadOptions workload_options;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  bench::BenchRunOptions run;
  
  run.eval_every = 5;
  run.target_accuracy = 0.50;
  run.max_epochs = 400;

  const fl::RunResult fedavg = bench::RunBench(workload, "fedavg", run);
  const fl::RunResult fedmigr_result =
      bench::RunBench(workload, "fedmigr", run);

  std::printf(
      "Table I reproduction: cost to reach %.0f%% accuracy "
      "(C10 analogue)\n\n",
      100 * run.target_accuracy);
  util::TableWriter table({"Scheme", "Completion Time (s)",
                           "Traffic Consumption (MB)", "Epochs",
                           "Reached target"});
  for (const auto* result : {&fedavg, &fedmigr_result}) {
    const bool hit = result->reached_target;
    table.AddRow();
    table.AddCell(result->scheme);
    table.AddCell(hit ? result->time_to_target_s : result->time_s, 0);
    table.AddCell(
        (hit ? result->traffic_to_target_gb : result->traffic_gb) * 1000.0,
        1);
    table.AddCell(hit ? result->epochs_to_target : result->epochs_run);
    table.AddCell(hit ? "yes" : "no (cap)");
  }
  table.Print(std::cout);

  if (fedavg.reached_target && fedmigr_result.reached_target) {
    std::printf(
        "\nFedMigr vs FedAvg: time %s, traffic %s "
        "(paper: -53%% time, -47%% traffic)\n",
        bench::PercentChange(fedavg.time_to_target_s,
                             fedmigr_result.time_to_target_s)
            .c_str(),
        bench::PercentChange(fedavg.traffic_to_target_gb,
                             fedmigr_result.traffic_to_target_gb)
            .c_str());
  }
  return 0;
}
