#include "common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "fl/policies.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/file.h"
#include "util/logging.h"

namespace fedmigr::bench {

core::Workload MakeBenchWorkload(const BenchWorkloadOptions& options) {
  core::WorkloadConfig config;
  config.dataset = options.dataset;
  config.partition = options.partition;
  config.partition_param = options.partition_param;
  config.num_clients = options.num_clients;
  config.num_lans = options.num_lans;
  config.seed = options.seed;
  config.signal_override = options.signal;
  config.train_per_class_override = options.train_per_class;
  return core::MakeWorkload(config);
}

fl::SchemeSetup MakeBenchScheme(const std::string& name,
                                const core::Workload& workload,
                                const BenchRunOptions& options) {
  fl::SchemeSetup setup;
  if (name == "fedmigr") {
    core::FedMigrOptions fedmigr_options;
    fedmigr_options.agg_period = options.agg_period;
    fedmigr_options.policy.online_learning = true;
    fedmigr_options.policy.rho = 0.2;
    setup = core::MakeFedMigr(workload.topology, workload.num_classes,
                              fedmigr_options);
  } else if (name == "crosslan" || name == "withinlan") {
    setup.config.scheme_name = name;
    setup.config.agg_period = options.agg_period;
    setup.policy =
        std::make_unique<fl::LanConstrainedPolicy>(name == "crosslan");
  } else if (name == "randonly") {
    setup.config.scheme_name = "random";
    setup.config.agg_period = options.agg_period;
    setup.policy = std::make_unique<fl::RandomMigrationPolicy>();
  } else {
    setup = fl::MakeSchemeByName(name, options.agg_period);
  }
  setup.config.max_epochs = options.max_epochs;
  setup.config.learning_rate = options.learning_rate;
  setup.config.batch_size = options.batch_size;
  setup.config.eval_every = options.eval_every;
  setup.config.target_accuracy = options.target_accuracy;
  setup.config.budget = options.budget;
  setup.config.dp = options.dp;
  setup.config.fault = options.fault;
  setup.config.robust = options.robust;
  setup.config.cohort_size = options.cohort_size;
  setup.config.quorum_fraction = options.quorum_fraction;
  setup.config.seed = options.seed;
  return setup;
}

fl::RunResult RunBench(const core::Workload& workload,
                       const std::string& scheme,
                       const BenchRunOptions& options) {
  return core::RunScheme(workload, MakeBenchScheme(scheme, workload, options));
}

namespace {

// Returns the value of a "--flag=value" argument, or nullptr.
const char* FlagValue(const char* arg, const char* prefix) {
  const size_t len = std::strlen(prefix);
  return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
}

}  // namespace

SnapshotFlags ParseSnapshotFlags(int argc, char** argv) {
  SnapshotFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "--snapshot-dir=")) {
      flags.directory = v;
    } else if (const char* v = FlagValue(argv[i], "--snapshot-every=")) {
      flags.every_epochs = std::max(1, std::atoi(v));
    } else if (const char* v = FlagValue(argv[i], "--snapshot-keep=")) {
      flags.keep = std::max(1, std::atoi(v));
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      flags.resume = true;
    }
  }
  return flags;
}

core::RunControl MakeRunControl(const SnapshotFlags& flags,
                                const std::string& run_name) {
  core::RunControl control;
  if (!flags.enabled()) return control;
  control.snapshot.directory = flags.directory + "/" + run_name;
  control.snapshot.every_epochs = flags.every_epochs;
  control.snapshot.keep = flags.keep;
  control.resume = flags.resume;
  control.handle_signals = true;
  return control;
}

fl::RunResult RunBench(const core::Workload& workload,
                       const std::string& scheme,
                       const BenchRunOptions& options,
                       const SnapshotFlags& flags) {
  return RunBench(workload, scheme, options, flags, JournalFlags());
}

std::string JournalFlags::PathFor(const std::string& run_name) const {
  if (!enabled()) return std::string();
  return directory + "/" + run_name + ".fjrn";
}

JournalFlags ParseJournalFlags(int argc, char** argv) {
  JournalFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "--journal-out=")) {
      flags.directory = v;
    } else if (const char* v = FlagValue(argv[i], "--journal-sample=")) {
      flags.sample_rate = std::atof(v);
    }
  }
  return flags;
}

fl::RunResult RunBench(const core::Workload& workload,
                       const std::string& scheme,
                       const BenchRunOptions& options,
                       const SnapshotFlags& snapshot_flags,
                       const JournalFlags& journal_flags) {
  return RunBenchNamed(workload, scheme, options, snapshot_flags,
                       journal_flags,
                       scheme + "-s" + std::to_string(options.seed));
}

fl::RunResult RunBenchNamed(const core::Workload& workload,
                            const std::string& scheme,
                            const BenchRunOptions& options,
                            const SnapshotFlags& snapshot_flags,
                            const JournalFlags& journal_flags,
                            const std::string& run_name) {
  core::RunControl control = MakeRunControl(snapshot_flags, run_name);
  std::unique_ptr<obs::Journal> journal;
  if (journal_flags.enabled()) {
    const util::Status made = util::MakeDirectories(journal_flags.directory);
    if (!made.ok()) {
      FEDMIGR_LOG(kError) << "journal dir failed: " << made.ToString();
    } else {
      obs::Journal::Options journal_options;
      journal_options.path = journal_flags.PathFor(run_name);
      journal_options.sample_rate = journal_flags.sample_rate;
      journal = std::make_unique<obs::Journal>(journal_options);
      control.journal = journal.get();
    }
  }
  return core::RunScheme(workload, MakeBenchScheme(scheme, workload, options),
                         control);
}

TelemetryFlags ParseTelemetryFlags(int argc, char** argv) {
  TelemetryFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "--metrics-out=")) {
      flags.metrics_out = v;
    } else if (const char* v = FlagValue(argv[i], "--trace-out=")) {
      flags.trace_out = v;
    } else if (const char* v = FlagValue(argv[i], "--log-level=")) {
      util::LogLevel level = util::LogLevel::kInfo;
      if (util::ParseLogLevel(v, &level)) {
        util::SetLogLevel(level);
      } else {
        FEDMIGR_LOG(kWarning) << "unknown --log-level '" << v
                              << "' (want debug|info|warning|error)";
      }
    }
  }
  return flags;
}

RobustFlags ParseRobustFlags(int argc, char** argv) {
  RobustFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (const char* v = FlagValue(argv[i], "--attack-mode=")) {
      if (net::ParseAttackMode(v, &flags.attack_mode)) {
        flags.any = true;
      } else {
        FEDMIGR_LOG(kWarning)
            << "unknown --attack-mode '" << v
            << "' (want none|sign-flip|gaussian|scale|silent|nan)";
      }
    } else if (const char* v = FlagValue(argv[i], "--attack-frac=")) {
      flags.attack_fraction = std::atof(v);
      flags.any = true;
    } else if (const char* v = FlagValue(argv[i], "--attack-scale=")) {
      flags.attack_scale = std::atof(v);
      flags.any = true;
    } else if (const char* v = FlagValue(argv[i], "--aggregator=")) {
      if (fl::ParseAggregatorKind(v, &flags.robust.aggregator)) {
        flags.any = true;
      } else {
        FEDMIGR_LOG(kWarning)
            << "unknown --aggregator '" << v
            << "' (want mean|trimmed-mean|median|krum|multi-krum)";
      }
    } else if (const char* v = FlagValue(argv[i], "--robust-profile=")) {
      if (fl::ParseRobustProfile(v, &flags.robust)) {
        flags.any = true;
      } else {
        FEDMIGR_LOG(kWarning) << "unknown --robust-profile '" << v
                              << "' (want off|screen|defense)";
      }
    }
  }
  return flags;
}

void RobustFlags::ApplyTo(BenchRunOptions* options) const {
  if (!any) return;
  options->fault.attack_mode = attack_mode;
  options->fault.attack_fraction = attack_fraction;
  options->fault.attack_scale = attack_scale;
  options->robust = robust;
}

void BeginTelemetry(const TelemetryFlags& flags) {
  if (!flags.trace_out.empty()) obs::TraceRecorder::Default().Start();
}

void FinishTelemetry(const TelemetryFlags& flags) {
  if (!flags.trace_out.empty()) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
    recorder.Stop();
    const util::Status status = recorder.WriteChromeJson(flags.trace_out);
    if (!status.ok()) {
      FEDMIGR_LOG(kError) << "trace write failed: " << status.ToString();
    }
  }
  if (!flags.metrics_out.empty()) {
    const bool csv = flags.metrics_out.size() > 4 &&
                     flags.metrics_out.rfind(".csv") ==
                         flags.metrics_out.size() - 4;
    const obs::Registry& registry = obs::Registry::Default();
    const util::Status status = csv
                                    ? registry.WriteCsvFile(flags.metrics_out)
                                    : registry.WriteJsonFile(flags.metrics_out);
    if (!status.ok()) {
      FEDMIGR_LOG(kError) << "metrics write failed: " << status.ToString();
    }
  }
}

std::string PercentChange(double baseline, double value) {
  if (baseline == 0.0) return "n/a";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.0f%%",
                100.0 * (value - baseline) / baseline);
  return buffer;
}

}  // namespace fedmigr::bench
