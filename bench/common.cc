#include "common.h"

#include <cstdio>

#include "fl/policies.h"
#include "util/logging.h"

namespace fedmigr::bench {

core::Workload MakeBenchWorkload(const BenchWorkloadOptions& options) {
  core::WorkloadConfig config;
  config.dataset = options.dataset;
  config.partition = options.partition;
  config.partition_param = options.partition_param;
  config.num_clients = options.num_clients;
  config.num_lans = options.num_lans;
  config.seed = options.seed;
  config.signal_override = options.signal;
  config.train_per_class_override = options.train_per_class;
  return core::MakeWorkload(config);
}

fl::SchemeSetup MakeBenchScheme(const std::string& name,
                                const core::Workload& workload,
                                const BenchRunOptions& options) {
  fl::SchemeSetup setup;
  if (name == "fedmigr") {
    core::FedMigrOptions fedmigr_options;
    fedmigr_options.agg_period = options.agg_period;
    fedmigr_options.policy.online_learning = true;
    fedmigr_options.policy.rho = 0.2;
    setup = core::MakeFedMigr(workload.topology, workload.num_classes,
                              fedmigr_options);
  } else if (name == "crosslan" || name == "withinlan") {
    setup.config.scheme_name = name;
    setup.config.agg_period = options.agg_period;
    setup.policy =
        std::make_unique<fl::LanConstrainedPolicy>(name == "crosslan");
  } else if (name == "randonly") {
    setup.config.scheme_name = "random";
    setup.config.agg_period = options.agg_period;
    setup.policy = std::make_unique<fl::RandomMigrationPolicy>();
  } else {
    setup = fl::MakeSchemeByName(name, options.agg_period);
  }
  setup.config.max_epochs = options.max_epochs;
  setup.config.learning_rate = options.learning_rate;
  setup.config.batch_size = options.batch_size;
  setup.config.eval_every = options.eval_every;
  setup.config.target_accuracy = options.target_accuracy;
  setup.config.budget = options.budget;
  setup.config.dp = options.dp;
  setup.config.fault = options.fault;
  setup.config.seed = options.seed;
  return setup;
}

fl::RunResult RunBench(const core::Workload& workload,
                       const std::string& scheme,
                       const BenchRunOptions& options) {
  return core::RunScheme(workload, MakeBenchScheme(scheme, workload, options));
}

std::string PercentChange(double baseline, double value) {
  if (baseline == 0.0) return "n/a";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%+.0f%%",
                100.0 * (value - baseline) / baseline);
  return buffer;
}

}  // namespace fedmigr::bench
