// Fault tolerance — accuracy and cost of FedAvg / RandMigr / FedMigr under
// increasing link failure rates.
//
// Not a figure of the paper: the paper assumes reliable transfers, but its
// setting (edge nodes that "dynamically join and leave", WAN links between
// LANs) makes in-flight failures the realistic regime — this bench measures
// how gracefully each scheme degrades. Every failed attempt still burns
// bandwidth and time; C2C migrations that exhaust their retries fall back
// through the parameter server (charged as C2S). Expected shape: accuracy
// decays slowly with the failure rate (lost uploads reweight the round,
// lost migrations keep the stale replica), while traffic and wall-clock
// grow with the retry/fallback overhead.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace fedmigr;

  const bench::TelemetryFlags telemetry_flags =
      bench::ParseTelemetryFlags(argc, argv);
  bench::BeginTelemetry(telemetry_flags);
  // Optional Byzantine overlay (--attack-mode/--attack-frac/--aggregator/
  // --robust-profile): the sweep below then runs under adversarial uploads
  // with the chosen defense. Without the flags nothing changes and the
  // table stays byte-identical.
  const bench::RobustFlags robust_flags = bench::ParseRobustFlags(argc, argv);

  const double failure_rates[] = {0.0, 0.05, 0.1, 0.2, 0.4};
  const char* schemes[] = {"fedavg", "randmigr", "fedmigr"};
  constexpr int kEpochs = 60;

  bench::BenchWorkloadOptions workload_options;
  workload_options.partition = core::PartitionKind::kLanShard;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  std::printf(
      "Fault tolerance: accuracy/cost vs link failure rate\n"
      "(C10 analogue, LAN-correlated non-IID, %d epochs, agg every 5, "
      "retries=2 with backoff, server fallback on)\n\n",
      kEpochs);
  if (robust_flags.any) {
    std::printf(
        "Byzantine overlay: attack=%s frac=%.2f scale=%.1f aggregator=%s "
        "screening=%s quarantine=%s\n\n",
        net::AttackModeName(robust_flags.attack_mode),
        robust_flags.attack_fraction, robust_flags.attack_scale,
        fl::AggregatorKindName(robust_flags.robust.aggregator),
        robust_flags.robust.screening.active() ? "on" : "off",
        robust_flags.robust.reputation.enabled ? "on" : "off");
  }
  util::TableWriter table({"scheme", "p(fail)", "acc (%)", "traffic (GB)",
                           "time (s)", "attempts", "failures", "retries",
                           "fallbacks", "aborted"});
  for (const char* scheme : schemes) {
    for (double rate : failure_rates) {
      bench::BenchRunOptions run;
      run.max_epochs = kEpochs;
      run.eval_every = 20;
      run.fault.link_failure_prob = rate;
      robust_flags.ApplyTo(&run);
      const fl::RunResult result = bench::RunBench(workload, scheme, run);
      table.AddRow();
      table.AddCell(scheme);
      table.AddCell(rate, 2);
      table.AddCell(100.0 * result.final_accuracy, 1);
      table.AddCell(result.traffic_gb, 3);
      table.AddCell(result.time_s, 1);
      table.AddCell(static_cast<int>(result.faults.attempts));
      table.AddCell(static_cast<int>(result.faults.failures));
      table.AddCell(static_cast<int>(result.faults.retries));
      table.AddCell(static_cast<int>(result.faults.fallbacks));
      table.AddCell(static_cast<int>(result.faults.aborted_transfers));
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nReading: p(fail)=0 rows are bit-identical to the fault-free bench "
      "path (the\ninjector is a strict no-op); under loss, accuracy degrades "
      "gracefully while\nretries/fallbacks inflate traffic and time.\n");
  bench::FinishTelemetry(telemetry_flags);
  return 0;
}
