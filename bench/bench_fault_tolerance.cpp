// Fault tolerance — accuracy and cost of FedAvg / RandMigr / FedMigr under
// increasing link failure rates.
//
// Not a figure of the paper: the paper assumes reliable transfers, but its
// setting (edge nodes that "dynamically join and leave", WAN links between
// LANs) makes in-flight failures the realistic regime — this bench measures
// how gracefully each scheme degrades. Every failed attempt still burns
// bandwidth and time; C2C migrations that exhaust their retries fall back
// through the parameter server (charged as C2S). Expected shape: accuracy
// decays slowly with the failure rate (lost uploads reweight the round,
// lost migrations keep the stale replica), while traffic and wall-clock
// grow with the retry/fallback overhead.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common.h"
#include "util/csv.h"

int main(int argc, char** argv) {
  using namespace fedmigr;

  const bench::TelemetryFlags telemetry_flags =
      bench::ParseTelemetryFlags(argc, argv);
  bench::BeginTelemetry(telemetry_flags);
  // Optional Byzantine overlay (--attack-mode/--attack-frac/--aggregator/
  // --robust-profile): the sweep below then runs under adversarial uploads
  // with the chosen defense. Without the flags nothing changes and the
  // table stays byte-identical.
  const bench::RobustFlags robust_flags = bench::ParseRobustFlags(argc, argv);
  // --journal-out=DIR records one flight-recorder journal per (scheme,
  // failure-rate) run; file outputs only, the table stays byte-identical.
  const bench::JournalFlags journal_flags =
      bench::ParseJournalFlags(argc, argv);
  // --cohort=N activates N clients per round (0 = full participation);
  // --quorum=F arms the round-progress watchdog at fraction F.
  int cohort_size = 0;
  double quorum_fraction = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--cohort=", 9) == 0) {
      cohort_size = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--quorum=", 9) == 0) {
      quorum_fraction = std::atof(argv[i] + 9);
    }
  }

  const double failure_rates[] = {0.0, 0.05, 0.1, 0.2, 0.4};
  const char* schemes[] = {"fedavg", "randmigr", "fedmigr"};
  constexpr int kEpochs = 60;

  bench::BenchWorkloadOptions workload_options;
  workload_options.partition = core::PartitionKind::kLanShard;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  std::printf(
      "Fault tolerance: accuracy/cost vs link failure rate\n"
      "(C10 analogue, LAN-correlated non-IID, %d epochs, agg every 5, "
      "retries=2 with backoff, server fallback on)\n\n",
      kEpochs);
  if (cohort_size > 0 || quorum_fraction > 0.0) {
    std::printf("Cohort overlay: cohort=%d quorum=%.2f\n\n", cohort_size,
                quorum_fraction);
  }
  if (robust_flags.any) {
    std::printf(
        "Byzantine overlay: attack=%s frac=%.2f scale=%.1f aggregator=%s "
        "screening=%s quarantine=%s\n\n",
        net::AttackModeName(robust_flags.attack_mode),
        robust_flags.attack_fraction, robust_flags.attack_scale,
        fl::AggregatorKindName(robust_flags.robust.aggregator),
        robust_flags.robust.screening.active() ? "on" : "off",
        robust_flags.robust.reputation.enabled ? "on" : "off");
  }
  util::TableWriter table({"scheme", "p(fail)", "acc (%)", "traffic (GB)",
                           "up (GB)", "down (GB)", "time (s)", "attempts",
                           "failures", "retries", "fallbacks", "aborted",
                           "dropped"});
  for (const char* scheme : schemes) {
    for (double rate : failure_rates) {
      bench::BenchRunOptions run;
      run.max_epochs = kEpochs;
      run.eval_every = 20;
      run.fault.link_failure_prob = rate;
      run.cohort_size = cohort_size;
      run.quorum_fraction = quorum_fraction;
      robust_flags.ApplyTo(&run);
      // One run per (scheme, failure rate) at a fixed seed — the rate joins
      // the run name so the journals don't collide.
      char run_name[64];
      std::snprintf(run_name, sizeof(run_name), "%s-p%02d-s%d", scheme,
                    static_cast<int>(rate * 100.0 + 0.5),
                    static_cast<int>(run.seed));
      const fl::RunResult result =
          bench::RunBenchNamed(workload, scheme, run, bench::SnapshotFlags(),
                               journal_flags, run_name);
      table.AddRow();
      table.AddCell(scheme);
      table.AddCell(rate, 2);
      table.AddCell(100.0 * result.final_accuracy, 1);
      table.AddCell(result.traffic_gb, 3);
      // The directional C2S split: dropped-straggler uploads stay in the
      // upload column instead of inflating the distribution total.
      table.AddCell(result.c2s_up_gb, 3);
      table.AddCell(result.c2s_down_gb, 3);
      table.AddCell(result.time_s, 1);
      table.AddCell(static_cast<int>(result.faults.attempts));
      table.AddCell(static_cast<int>(result.faults.failures));
      table.AddCell(static_cast<int>(result.faults.retries));
      table.AddCell(static_cast<int>(result.faults.fallbacks));
      table.AddCell(static_cast<int>(result.faults.aborted_transfers));
      table.AddCell(static_cast<int>(result.faults.dropped_stragglers));
    }
  }
  table.Print(std::cout);

  std::printf(
      "\nReading: p(fail)=0 rows are bit-identical to the fault-free bench "
      "path (the\ninjector is a strict no-op); under loss, accuracy degrades "
      "gracefully while\nretries/fallbacks inflate traffic and time.\n");
  bench::FinishTelemetry(telemetry_flags);
  return 0;
}
