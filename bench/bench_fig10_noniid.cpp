// Fig. 10 — Test accuracy of the five schemes under different non-IID
// levels: the testbed's p%-dominance skew for CIFAR-10 and class-lack skew
// for CIFAR-100.
//
// Paper: accuracy degrades with the non-IID level for every scheme, and
// the migration schemes degrade the least (FedMigr best, then RandMigr).
// Here: the same two partitions on the synthetic analogues.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  const char* schemes[] = {"fedmigr", "randmigr", "fedswap", "fedprox",
                           "fedavg"};

  std::printf(
      "Fig. 10 reproduction (left): C10 accuracy (%%) vs dominance level "
      "p\n\n");
  {
    util::TableWriter table({"Scheme", "p=0.1 (IID)", "p=0.6", "p=0.8"});
    const double levels[] = {0.1, 0.6, 0.8};
    // One workload per level, shared across schemes.
    std::vector<core::Workload> workloads;
    for (double p : levels) {
      bench::BenchWorkloadOptions workload_options;
      workload_options.partition = core::PartitionKind::kDominance;
      workload_options.partition_param = p;
      workloads.push_back(bench::MakeBenchWorkload(workload_options));
    }
    bench::BenchRunOptions run;
    run.max_epochs = 120;
    run.eval_every = 40;
    for (const char* scheme : schemes) {
      table.AddRow();
      table.AddCell(scheme);
      for (const auto& workload : workloads) {
        table.AddCell(
            100.0 * bench::RunBench(workload, scheme, run).final_accuracy,
            1);
      }
    }
    table.Print(std::cout);
  }

  std::printf(
      "\nFig. 10 reproduction (right): C100 accuracy (%%) vs lacked "
      "classes\n\n");
  {
    util::TableWriter table({"Scheme", "lack=0 (IID)", "lack=80"});
    const int levels[] = {0, 80};
    std::vector<core::Workload> workloads;
    for (int lack : levels) {
      bench::BenchWorkloadOptions workload_options;
      workload_options.dataset = "c100";
      workload_options.num_clients = 20;
      workload_options.num_lans = 5;
      workload_options.train_per_class = 8;
      workload_options.signal = 1.0;
      workload_options.partition = core::PartitionKind::kClassLack;
      workload_options.partition_param = lack;
      workloads.push_back(bench::MakeBenchWorkload(workload_options));
    }
    bench::BenchRunOptions run;
    run.agg_period = 3;  // tighter sync horizon for the 100-way task
    run.max_epochs = 150;
    run.eval_every = 75;
    for (const char* scheme : schemes) {
      table.AddRow();
      table.AddCell(scheme);
      for (const auto& workload : workloads) {
        table.AddCell(
            100.0 * bench::RunBench(workload, scheme, run).final_accuracy,
            1);
      }
    }
    table.Print(std::cout);
  }

  std::printf(
      "\npaper shape: accuracy falls as the non-IID level rises; FedMigr "
      "and RandMigr degrade least.\n");
  return 0;
}
