// Fig. 8 — Impact of link speed: how often FedMigr's agent uses each C2C
// link, grouped by the link's speed class (fast / moderate / slow).
//
// Paper: over 500 epochs, faster links carry migrations with markedly
// higher frequency, because the DRL agent folds the transfer time into its
// decision. Here: the C10 topology with one third of the C2C links slowed
// 10x and one third sped up 3x; we report mean migrations per link for
// each class.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/csv.h"
#include "util/rng.h"

int main() {
  using namespace fedmigr;

  bench::BenchWorkloadOptions workload_options;
  core::Workload workload = bench::MakeBenchWorkload(workload_options);

  // Assign speed classes pseudo-randomly to the 45 undirected client pairs.
  const int k = workload.topology.num_clients();
  util::Rng rng(42);
  std::vector<std::pair<int, int>> fast_links, moderate_links, slow_links;
  for (int a = 0; a < k; ++a) {
    for (int b = a + 1; b < k; ++b) {
      const int cls = rng.UniformInt(3);
      if (cls == 0) {
        workload.topology.SetLinkMultiplier(a, b, 3.0);
        fast_links.push_back({a, b});
      } else if (cls == 1) {
        moderate_links.push_back({a, b});
      } else {
        workload.topology.SetLinkMultiplier(a, b, 0.1);
        slow_links.push_back({a, b});
      }
    }
  }

  bench::BenchRunOptions run;
  run.max_epochs = 150;
  run.eval_every = 50;
  const fl::RunResult result = bench::RunBench(workload, "fedmigr", run);

  auto mean_count = [&](const std::vector<std::pair<int, int>>& links) {
    if (links.empty()) return 0.0;
    int64_t total = 0;
    for (const auto& [a, b] : links) total += result.traffic.LinkCount(a, b);
    return static_cast<double>(total) / static_cast<double>(links.size());
  };

  std::printf(
      "Fig. 8 reproduction: C2C link usage by FedMigr vs link speed class "
      "(%d epochs)\n\n",
      run.max_epochs);
  util::TableWriter table(
      {"link class", "num links", "migrations total", "migrations per link"});
  const struct {
    const char* label;
    const std::vector<std::pair<int, int>>* links;
  } classes[] = {{"fast (3x)", &fast_links},
                 {"moderate (1x)", &moderate_links},
                 {"slow (0.1x)", &slow_links}};
  for (const auto& cls : classes) {
    int64_t total = 0;
    for (const auto& [a, b] : *cls.links) {
      total += result.traffic.LinkCount(a, b);
    }
    table.AddRow();
    table.AddCell(cls.label);
    table.AddCell(static_cast<int>(cls.links->size()));
    table.AddCell(static_cast<int>(total));
    table.AddCell(mean_count(*cls.links), 2);
  }
  table.Print(std::cout);
  std::printf(
      "\npaper shape: faster links are selected with higher frequency.\n"
      "(final accuracy of the run: %.1f%%)\n",
      100 * result.final_accuracy);
  return 0;
}
