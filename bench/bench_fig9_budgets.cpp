// Fig. 9 — Test accuracy under resource constraints: the accuracy each
// scheme reaches (a) within a bandwidth budget and (b) within a completion-
// time budget.
//
// Paper (CNN/CIFAR-10): accuracy rises with either budget for every
// scheme, and FedMigr dominates at every budget level (e.g., at 1 GB:
// 65.7% vs 63.3/60.5/58.8/57.4). Here: C10 analogue with scaled budgets.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  bench::BenchWorkloadOptions workload_options;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  const char* schemes[] = {"fedmigr", "randmigr", "fedswap", "fedprox",
                           "fedavg"};
  const double bandwidth_budgets_mb[] = {20.0, 40.0, 80.0};
  const double time_budgets_s[] = {30.0, 60.0, 120.0};

  bench::BenchRunOptions base;
  base.max_epochs = 180;
  base.eval_every = 10;

  std::printf(
      "Fig. 9 reproduction (left): accuracy (%%) within a bandwidth "
      "budget\n\n");
  {
    util::TableWriter table({"Scheme", "20 MB", "40 MB", "80 MB"});
    for (const char* scheme : schemes) {
      table.AddRow();
      table.AddCell(scheme);
      for (double budget_mb : bandwidth_budgets_mb) {
        bench::BenchRunOptions run = base;
        run.budget = net::Budget(1e15, budget_mb * 1e6);
        const fl::RunResult result =
            bench::RunBench(workload, scheme, run);
        table.AddCell(100.0 * result.best_accuracy, 1);
      }
    }
    table.Print(std::cout);
  }

  std::printf(
      "\nFig. 9 reproduction (right): accuracy (%%) within a completion-"
      "time budget\n\n");
  {
    util::TableWriter table({"Scheme", "30 s", "60 s", "120 s"});
    for (const char* scheme : schemes) {
      table.AddRow();
      table.AddCell(scheme);
      for (double budget_s : time_budgets_s) {
        bench::BenchRunOptions run = base;
        run.budget = net::Budget(1e15, 1e15, budget_s);
        const fl::RunResult result =
            bench::RunBench(workload, scheme, run);
        table.AddCell(100.0 * result.best_accuracy, 1);
      }
    }
    table.Print(std::cout);
  }

  std::printf(
      "\npaper shape: accuracy increases with either budget; FedMigr "
      "highest at every level.\n");
  return 0;
}
