// Ablation of the migration-policy design choices called out in
// DESIGN.md §6 — not a paper exhibit, but the evidence behind the
// implementation decisions:
//
//   none        — FedAvg-with-period (aggregation only, no migration)
//   randonly    — uniform random permutation (no intelligence)
//   maxemd      — deterministic max-divergence matching (expected to
//                 collapse: the stochasticity ablation)
//   fedmigr-flmm— convex planner with load balancing + comm penalty
//   fedmigr r=0 — pure DRL policy
//   fedmigr r=.4— DRL with ρ-greedy FLMM mixing
//
// Expected: maxemd far below random (determinism pathology); flmm and the
// DRL variants at or above random.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  bench::BenchRunOptions run;
  run.max_epochs = 120;
  run.eval_every = 30;

  const struct {
    const char* label;
    core::PartitionKind partition;
  } partitions[] = {
      {"LAN-correlated skew (lanshard)", core::PartitionKind::kLanShard},
      {"one class per client (shard)", core::PartitionKind::kShard},
  };

  for (const auto& pcase : partitions) {
    bench::BenchWorkloadOptions workload_options;
    workload_options.partition = pcase.partition;
    const core::Workload workload =
        bench::MakeBenchWorkload(workload_options);

    std::printf("Policy ablation — %s, %d epochs\n\n", pcase.label,
                run.max_epochs);
    util::TableWriter table(
        {"policy", "final acc (%)", "C2C traffic (MB)", "migrations"});

    auto report = [&](const std::string& label,
                      const fl::RunResult& result) {
      int migrations = 0;
      for (const auto& record : result.history) {
        migrations += record.migrations;
      }
      table.AddRow();
      table.AddCell(label);
      table.AddCell(100.0 * result.final_accuracy, 1);
      table.AddCell(result.c2c_gb * 1000.0, 1);
      table.AddCell(migrations);
    };

    // Aggregation-only reference at the same period.
    {
      fl::SchemeSetup setup =
          bench::MakeBenchScheme("fedprox", workload, run);
      setup.config.scheme_name = "agg-only";
      setup.config.fedprox_mu = 0.0;
      setup.config.agg_period = run.agg_period;
      report("none (agg only)", core::RunScheme(workload, std::move(setup)));
    }
    report("random", bench::RunBench(workload, "randonly", run));
    report("max-emd (determ.)", bench::RunBench(workload, "maxemd", run));
    report("flmm planner", bench::RunBench(workload, "fedmigr-flmm", run));
    {
      fl::SchemeSetup setup =
          bench::MakeBenchScheme("fedmigr", workload, run);
      report("drl (rho=0.2)", core::RunScheme(workload, std::move(setup)));
    }

    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "expected: under tie-heavy gains (shard) the deterministic max-EMD "
      "matching collapses while stochastic gain-aware policies (flmm, drl) "
      "stay at or above random; under LAN-correlated skew all migration "
      "policies clearly beat aggregation-only, with cost-aware ones on "
      "top.\n");
  return 0;
}
