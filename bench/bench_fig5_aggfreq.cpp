// Fig. 5 — Effect of the Model Migration frequency: accuracy when Global
// Aggregation happens every 2 / 5 / 10 / 20 / 50 epochs ("agg2".."agg50"),
// i.e. with M = period - 1 migrations per global iteration.
//
// Paper: accuracy improves with more migration rounds per aggregation
// (agg2 -> agg100: 63% -> 73%), because each local model trains over data
// from more clients between aggregations. The countervailing force —
// drift between rare synchronizations — eventually wins for very long
// periods, so we report the full curve including any roll-off.

#include <cstdio>
#include <iostream>

#include "common.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  bench::BenchWorkloadOptions workload_options;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  bench::BenchRunOptions run;
  run.max_epochs = 150;
  run.eval_every = 50;

  std::printf(
      "Fig. 5 reproduction: FedMigr accuracy vs aggregation period "
      "(%d epochs, C10 analogue)\n\n",
      run.max_epochs);
  util::TableWriter table({"config", "migrations / global iter (M)",
                           "acc @50 (%)", "acc @100 (%)", "final acc (%)"});
  for (int period : {2, 5, 10, 20, 50}) {
    bench::BenchRunOptions sweep = run;
    sweep.agg_period = period;
    const fl::RunResult result = bench::RunBench(workload, "fedmigr", sweep);
    table.AddRow();
    table.AddCell("agg" + std::to_string(period));
    table.AddCell(period - 1);
    table.AddCell(100.0 * result.history[49].test_accuracy, 1);
    table.AddCell(100.0 * result.history[99].test_accuracy, 1);
    table.AddCell(100.0 * result.final_accuracy, 1);
  }
  table.Print(std::cout);
  std::printf(
      "\npaper shape: accuracy rises from agg2 toward larger migration "
      "counts (63%% -> 73%% over agg2..agg100).\n");
  return 0;
}
