// Robust aggregation — accuracy under Byzantine uploads, per aggregation
// rule, plus the screening/quarantine defense pipeline.
//
// Not a figure of the paper: the paper assumes honest clients, but FedMigr's
// C2C migrations make poisoning *worse* than in plain FedAvg — a tampered
// replica migrates to honest clients and contaminates the lineage. Two
// sweeps:
//
//   1. Aggregator x attack fraction (sign-flip by default) on FedAvg, where
//      every round is an aggregation: the weighted mean degrades with the
//      attacker mass while trimmed-mean / median / Krum hold their
//      clean-run accuracy as long as f stays a minority.
//   2. Attack mode x defense profile at a fixed fraction on FedMigr, where
//      migration spreads the poison between aggregations: the "defense"
//      profile (screening + reputation) rejects tampered uploads and
//      quarantines their senders — which is also what stops a poisoned
//      replica from migrating. The table shows what got caught and how
//      many rounds the first quarantine took.
//
// Flags: --quick trims the sweep for CI smoke; --attack-mode/--attack-scale
// override the tampering used in sweep 1 (see bench::RobustFlags).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "common.h"
#include "util/csv.h"
#include "util/logging.h"

namespace {

// Earliest aggregation round (1-based) any client entered quarantine; -1 if
// nobody was quarantined.
int FirstQuarantineRound(const fedmigr::fl::RunResult& result) {
  int first = -1;
  for (int round : result.first_quarantine_round) {
    if (round >= 0 && (first < 0 || round < first)) first = round;
  }
  return first;
}

int QuarantinedClients(const fedmigr::fl::RunResult& result) {
  int count = 0;
  for (int round : result.first_quarantine_round) {
    if (round >= 0) ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedmigr;

  const bench::TelemetryFlags telemetry_flags =
      bench::ParseTelemetryFlags(argc, argv);
  bench::BeginTelemetry(telemetry_flags);
  const bench::RobustFlags robust_flags = bench::ParseRobustFlags(argc, argv);

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const net::AttackMode sweep_mode =
      robust_flags.attack_mode == net::AttackMode::kNone
          ? net::AttackMode::kSignFlip
          : robust_flags.attack_mode;
  const int epochs = quick ? 20 : 60;
  std::vector<double> fractions = quick
                                      ? std::vector<double>{0.0, 0.2}
                                      : std::vector<double>{0.0, 0.1, 0.2, 0.3};
  std::vector<fl::AggregatorKind> aggregators =
      quick ? std::vector<fl::AggregatorKind>{fl::AggregatorKind::kMean,
                                              fl::AggregatorKind::kTrimmedMean,
                                              fl::AggregatorKind::kKrum}
            : std::vector<fl::AggregatorKind>{
                  fl::AggregatorKind::kMean, fl::AggregatorKind::kTrimmedMean,
                  fl::AggregatorKind::kCoordinateMedian,
                  fl::AggregatorKind::kKrum, fl::AggregatorKind::kMultiKrum};

  bench::BenchWorkloadOptions workload_options;
  workload_options.partition = core::PartitionKind::kLanShard;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  std::printf(
      "Robust aggregation: accuracy vs Byzantine fraction, per rule\n"
      "(C10 analogue, LAN-correlated non-IID, %d epochs, fedavg — every "
      "round aggregates,\nattack=%s scale=%.1f)\n\n",
      epochs, net::AttackModeName(sweep_mode), robust_flags.attack_scale);

  util::TableWriter sweep({"aggregator", "attack frac", "acc (%)", "attacked",
                           "screened"});
  for (fl::AggregatorKind kind : aggregators) {
    for (double fraction : fractions) {
      bench::BenchRunOptions run;
      run.max_epochs = epochs;
      run.eval_every = 20;
      run.fault.attack_mode = fraction > 0.0 ? sweep_mode
                                             : net::AttackMode::kNone;
      run.fault.attack_fraction = fraction;
      run.fault.attack_scale = robust_flags.attack_scale;
      run.robust.aggregator = kind;
      const fl::RunResult result = bench::RunBench(workload, "fedavg", run);
      sweep.AddRow();
      sweep.AddCell(fl::AggregatorKindName(kind));
      sweep.AddCell(fraction, 2);
      sweep.AddCell(100.0 * result.final_accuracy, 1);
      sweep.AddCell(static_cast<int>(result.robust.attacked_updates));
      sweep.AddCell(static_cast<int>(result.robust.screened_updates));
    }
  }
  sweep.Print(std::cout);

  // Sweep 2: the full defense pipeline against every attack mode. Mean
  // aggregation on purpose — the point is that screening + quarantine alone
  // rescue even the fragile rule.
  const net::AttackMode modes[] = {
      net::AttackMode::kSignFlip, net::AttackMode::kGaussianNoise,
      net::AttackMode::kScaledModel, net::AttackMode::kSilentCorruption,
      net::AttackMode::kNanInjection};
  std::printf(
      "\nDefense pipeline (profile=defense: screening + quarantine, mean "
      "aggregation,\n20%% attackers):\n\n");
  util::TableWriter defense({"attack", "acc (%)", "rejected", "clipped",
                             "quarantined", "first q round", "excluded"});
  for (net::AttackMode mode : modes) {
    bench::BenchRunOptions run;
    run.max_epochs = epochs;
    run.eval_every = 20;
    run.fault.attack_mode = mode;
    run.fault.attack_fraction = 0.2;
    run.fault.attack_scale = robust_flags.attack_scale;
    FEDMIGR_CHECK(fl::ParseRobustProfile("defense", &run.robust));
    const fl::RunResult result = bench::RunBench(workload, "fedmigr", run);
    const int64_t rejected = result.robust.nonfinite_rejected +
                             result.robust.norm_rejected +
                             result.robust.cosine_rejected;
    defense.AddRow();
    defense.AddCell(net::AttackModeName(mode));
    defense.AddCell(100.0 * result.final_accuracy, 1);
    defense.AddCell(static_cast<int>(rejected));
    defense.AddCell(static_cast<int>(result.robust.norm_clipped));
    defense.AddCell(QuarantinedClients(result));
    defense.AddCell(FirstQuarantineRound(result));
    defense.AddCell(static_cast<int>(result.robust.quarantine_excluded));
  }
  defense.Print(std::cout);

  std::printf(
      "\nReading: frac=0 rows match the attack-free path bit-for-bit; under "
      "sign-flip\nthe weighted mean collapses to chance at any attacker "
      "fraction while the robust\nrules degrade gracefully (Krum holds "
      "through 30%%). The defense pipeline catches\ndirection-reversing and "
      "non-finite tampering at ingest and quarantines the\nsenders within "
      "patience rounds; additive-noise tampering that stays\ndirectionally "
      "plausible evades the cosine gate — pair a robust rule with the\n"
      "screen for those modes.\n");
  bench::FinishTelemetry(telemetry_flags);
  return 0;
}
