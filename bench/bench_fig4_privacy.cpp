// Fig. 4 — Training performance of FedMigr under (ε, δ)-LDP budgets.
//
// Paper: CNN/CIFAR-10 with ε ∈ {∞, 150, 100}; accuracy degrades slightly as
// the budget tightens (72.4% / 69.2% / 67.6% at 200 epochs). Here: C10
// analogue; the expected shape is a modest, monotone degradation.

#include <cstdio>
#include <iostream>
#include <vector>

#include "common.h"
#include "util/csv.h"

int main() {
  using namespace fedmigr;

  bench::BenchWorkloadOptions workload_options;
  const core::Workload workload = bench::MakeBenchWorkload(workload_options);

  struct Budget {
    const char* label;
    double epsilon;  // <= 0 encodes infinity
  };
  const Budget budgets[] = {
      {"eps=inf", 0.0}, {"eps=150", 150.0}, {"eps=100", 100.0}};

  bench::BenchRunOptions run;
  run.max_epochs = 120;
  run.eval_every = 30;

  std::printf(
      "Fig. 4 reproduction: FedMigr accuracy under LDP budgets "
      "(C10 analogue)\n\n");
  util::TableWriter table(
      {"privacy budget", "acc @30 (%)", "acc @60 (%)", "acc @90 (%)",
       "acc @120 (%)"});
  std::vector<double> finals;
  for (const Budget& budget : budgets) {
    bench::BenchRunOptions with_dp = run;
    with_dp.dp.epsilon = budget.epsilon;
    with_dp.dp.clip_norm = 80.0;
    const fl::RunResult result =
        bench::RunBench(workload, "fedmigr", with_dp);
    table.AddRow();
    table.AddCell(budget.label);
    for (int epoch = 30; epoch <= 120; epoch += 30) {
      table.AddCell(
          100.0 *
              result.history[static_cast<size_t>(epoch - 1)].test_accuracy,
          1);
    }
    finals.push_back(result.final_accuracy);
  }
  table.Print(std::cout);
  std::printf(
      "\npaper @200 epochs: eps=inf 72.4%%, eps=150 69.2%%, eps=100 67.6%% "
      "— expected: mild monotone degradation\nmeasured finals: %.1f%% / "
      "%.1f%% / %.1f%%\n",
      100 * finals[0], 100 * finals[1], 100 * finals[2]);
  return 0;
}
