// Telemetry overhead at the Fig. 3 operating point: per-epoch wall-clock of
// the cheapest scheme (FedAvg) and the heaviest (FedMigr: DRL policy, per
// -step GEMMs through the instrumented kernels) with telemetry runtime-
// disabled vs enabled, interleaved epoch-by-epoch within one run. The
// instrumentation budget is <2% (DESIGN.md §11) — scopes are a relaxed
// load + two clock reads, metric updates are relaxed atomic RMWs, and the
// hottest counters (per-GEMM) batch thread-locally.
//
//   $ ./bench_telemetry [--epochs=N] [--metrics-out=F] [--trace-out=F]
//
// --epochs=N gives N enabled/disabled epoch pairs per scheme (2N epochs).
//
// With --trace-out the enabled runs also stream spans into the Chrome-trace
// ring (the disabled runs record nothing, by construction), so this binary
// doubles as the CI trace-artifact producer.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common.h"
#include "obs/journal.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "util/csv.h"
#include "util/file.h"
#include "util/logging.h"
#include "util/stats.h"

namespace {

struct InterleavedSamples {
  std::vector<double> on;   // epochs run with telemetry enabled
  std::vector<double> off;  // epochs run with telemetry disabled
};

// Epoch i runs with telemetry on in the balanced ABBA pattern
// (on,off,off,on | on,off,off,on | ...): on/off epochs see the same linear
// drift and any period-2 structure in the training loop averages out.
bool TelemetryOnForEpoch(int i) {
  const int phase = i & 3;
  return phase == 0 || phase == 3;
}

// One run of 2*pairs epochs with telemetry toggled per epoch. Sequential
// whole-run A/B timing is hopeless on a shared host — minute-scale load
// drift swamps a percent-level effect; interleaving within one run cancels
// it, and the k-th on/off samples stay temporally adjacent so their paired
// differences cancel it twice over.
InterleavedSamples TimedRun(const fedmigr::core::Workload& workload,
                            const std::string& scheme, int pairs) {
  using namespace fedmigr;
  const int epochs = 2 * pairs;
  bench::BenchRunOptions run;
  run.max_epochs = epochs;
  run.eval_every = epochs;  // evaluation is measurement, keep it off-path
  fl::SchemeSetup setup = bench::MakeBenchScheme(scheme, workload, run);
  fl::Trainer trainer(setup.config, &workload.data.train, workload.partition,
                      &workload.data.test, workload.topology,
                      workload.devices, workload.model_factory,
                      std::move(setup.policy));
  InterleavedSamples samples;
  samples.on.reserve(static_cast<size_t>(pairs));
  samples.off.reserve(static_cast<size_t>(pairs));
  int completed = 0;
  obs::Stopwatch watch;
  trainer.SetEpochHook([&](const fl::Trainer&, int) {
    const double elapsed = watch.ElapsedMs();
    (TelemetryOnForEpoch(completed) ? samples.on : samples.off)
        .push_back(elapsed);
    ++completed;
    if (TelemetryOnForEpoch(completed)) {
      obs::Telemetry::Enable();
    } else {
      obs::Telemetry::Disable();
    }
    watch.Restart();
    return true;
  });
  obs::Telemetry::Enable();
  watch.Restart();
  trainer.Run();
  obs::Telemetry::Enable();
  return samples;
}

// Same interleaved harness for the flight recorder: telemetry stays
// disabled throughout, and the journal is attached/detached per epoch via
// the epoch hook (an off epoch emits no events and commits no chunk), so
// the paired differences isolate exactly the journal's cost — event
// buffering plus one framed append to a real file per committed epoch.
InterleavedSamples JournalTimedRun(const fedmigr::core::Workload& workload,
                                   const std::string& scheme, int pairs,
                                   const std::string& path) {
  using namespace fedmigr;
  const int epochs = 2 * pairs;
  bench::BenchRunOptions run;
  run.max_epochs = epochs;
  run.eval_every = epochs;
  fl::SchemeSetup setup = bench::MakeBenchScheme(scheme, workload, run);
  fl::Trainer trainer(setup.config, &workload.data.train, workload.partition,
                      &workload.data.test, workload.topology,
                      workload.devices, workload.model_factory,
                      std::move(setup.policy));
  (void)util::RemoveFile(path);
  obs::Journal::Options journal_options;
  journal_options.path = path;
  obs::Journal journal(journal_options);
  const util::Status attached = journal.Attach(0);
  FEDMIGR_CHECK(attached.ok()) << attached.ToString();
  InterleavedSamples samples;
  samples.on.reserve(static_cast<size_t>(pairs));
  samples.off.reserve(static_cast<size_t>(pairs));
  int completed = 0;
  obs::Stopwatch watch;
  trainer.SetEpochHook([&](const fl::Trainer&, int) {
    const double elapsed = watch.ElapsedMs();
    (TelemetryOnForEpoch(completed) ? samples.on : samples.off)
        .push_back(elapsed);
    ++completed;
    trainer.SetJournal(TelemetryOnForEpoch(completed) ? &journal : nullptr);
    watch.Restart();
    return true;
  });
  obs::Telemetry::Disable();
  trainer.SetJournal(&journal);
  watch.Restart();
  trainer.Run();
  obs::Telemetry::Enable();
  (void)util::RemoveFile(path);
  return samples;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fedmigr;

  int epochs = 150;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--epochs=", 9) == 0) {
      epochs = std::max(2, std::atoi(argv[i] + 9));
    }
  }
  epochs += epochs % 2;  // even pair count keeps the ABBA pattern balanced
  const bench::TelemetryFlags telemetry_flags =
      bench::ParseTelemetryFlags(argc, argv);
  bench::BeginTelemetry(telemetry_flags);

  const core::Workload workload =
      bench::MakeBenchWorkload(bench::BenchWorkloadOptions{});

  std::printf(
      "Telemetry overhead per epoch (Fig. 3 workload, %d interleaved "
      "on/off epoch pairs per scheme)\n\n",
      epochs);
  util::TableWriter table({"scheme", "off p50 (ms)", "on p50 (ms)",
                           "off p90 (ms)", "on p90 (ms)", "overhead (%)"});
  bool over_budget = false;
  for (const char* scheme : {"fedavg", "fedmigr"}) {
    // Warm-up pass absorbs one-time costs (page cache, lazy pool spin-up)
    // so neither mode is charged for them.
    (void)TimedRun(workload, scheme, std::min(epochs, 3));

    const InterleavedSamples samples = TimedRun(workload, scheme, epochs);
    const util::Summary off = util::Summarize(samples.off);
    const util::Summary on = util::Summarize(samples.on);

    // Median of *paired* differences (k-th on epoch minus its temporally
    // adjacent k-th off epoch), not a difference of independent medians: a
    // single scheduler stall then perturbs one pair, not the whole
    // estimate.
    std::vector<double> diffs;
    diffs.reserve(std::min(samples.on.size(), samples.off.size()));
    for (size_t i = 0; i < samples.on.size() && i < samples.off.size(); ++i) {
      diffs.push_back(samples.on[i] - samples.off[i]);
    }
    const double overhead =
        off.p50 > 0.0 ? 100.0 * util::Percentile(diffs, 50.0) / off.p50 : 0.0;
    over_budget = over_budget || overhead > 2.0;
    table.AddRow();
    table.AddCell(scheme);
    table.AddCell(off.p50, 3);
    table.AddCell(on.p50, 3);
    table.AddCell(off.p90, 3);
    table.AddCell(on.p90, 3);
    table.AddCell(overhead, 2);
  }
  table.Print(std::cout);
  std::printf(
      "\noverhead = median of paired (on - off) per-epoch differences over "
      "the off median;\non/off epochs interleaved ABBA within one run; "
      "budget <2%%.%s\n",
      over_budget ? " WARNING: budget exceeded on this host/run." : "");

  // Flight-recorder cost through the same harness: the journal (full
  // client-detail sampling, real framed file appends) toggled per epoch
  // with telemetry off, so this row charges the journal alone.
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string journal_path =
      std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
      "/fedmigr-bench-telemetry.fjrn";
  std::printf("\nFlight-recorder (journal) overhead per epoch, same "
              "interleaved harness\n\n");
  util::TableWriter journal_table({"scheme", "off p50 (ms)", "on p50 (ms)",
                                   "off p90 (ms)", "on p90 (ms)",
                                   "overhead (%)"});
  bool journal_over_budget = false;
  for (const char* scheme : {"fedavg", "fedmigr"}) {
    (void)JournalTimedRun(workload, scheme, std::min(epochs, 3),
                          journal_path);
    const InterleavedSamples samples =
        JournalTimedRun(workload, scheme, epochs, journal_path);
    const util::Summary off = util::Summarize(samples.off);
    const util::Summary on = util::Summarize(samples.on);
    std::vector<double> diffs;
    diffs.reserve(std::min(samples.on.size(), samples.off.size()));
    for (size_t i = 0; i < samples.on.size() && i < samples.off.size(); ++i) {
      diffs.push_back(samples.on[i] - samples.off[i]);
    }
    const double overhead =
        off.p50 > 0.0 ? 100.0 * util::Percentile(diffs, 50.0) / off.p50 : 0.0;
    journal_over_budget = journal_over_budget || overhead > 2.0;
    journal_table.AddRow();
    journal_table.AddCell(scheme);
    journal_table.AddCell(off.p50, 3);
    journal_table.AddCell(on.p50, 3);
    journal_table.AddCell(off.p90, 3);
    journal_table.AddCell(on.p90, 3);
    journal_table.AddCell(overhead, 2);
  }
  journal_table.Print(std::cout);
  std::printf(
      "\njournal epochs append one CRC-framed chunk each; budget <2%%.%s\n",
      journal_over_budget ? " WARNING: budget exceeded on this host/run."
                          : "");

  bench::FinishTelemetry(telemetry_flags);
  return 0;
}
